(* Tests for the NOW discrete-event simulator: the event queue and engine
   primitives, the master/owner processes, and experiment E7's
   sim-vs-game-engine equivalence. *)

open Cyclesteal

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let params = Model.params ~c:1.

(* --- Event queue ----------------------------------------------------------- *)

let test_queue_ordering () =
  let q = Nowsim.Event_queue.create () in
  ignore (Nowsim.Event_queue.add q ~time:3. "c");
  ignore (Nowsim.Event_queue.add q ~time:1. "a");
  ignore (Nowsim.Event_queue.add q ~time:2. "b");
  let pops = List.init 3 (fun _ -> Nowsim.Event_queue.pop q) in
  let labels = List.map (function Some (_, x) -> x | None -> "?") pops in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] labels;
  Alcotest.(check bool) "drained" true (Nowsim.Event_queue.pop q = None)

let test_queue_fifo_ties () =
  let q = Nowsim.Event_queue.create () in
  for i = 0 to 9 do
    ignore (Nowsim.Event_queue.add q ~time:5. (string_of_int i))
  done;
  let labels =
    List.init 10 (fun _ ->
        match Nowsim.Event_queue.pop q with Some (_, x) -> x | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order at same time"
    (List.init 10 string_of_int) labels

let test_queue_cancellation () =
  let q = Nowsim.Event_queue.create () in
  let _h1 = Nowsim.Event_queue.add q ~time:1. "keep1" in
  let h2 = Nowsim.Event_queue.add q ~time:2. "drop" in
  let _h3 = Nowsim.Event_queue.add q ~time:3. "keep2" in
  Nowsim.Event_queue.cancel h2;
  Alcotest.(check bool) "is_cancelled" true (Nowsim.Event_queue.is_cancelled h2);
  Alcotest.(check int) "live count" 2 (Nowsim.Event_queue.length q);
  let labels =
    List.init 2 (fun _ ->
        match Nowsim.Event_queue.pop q with Some (_, x) -> x | None -> "?")
  in
  Alcotest.(check (list string)) "cancelled skipped" [ "keep1"; "keep2" ] labels

let test_queue_cancel_idempotent () =
  let q = Nowsim.Event_queue.create () in
  let h = Nowsim.Event_queue.add q ~time:1. () in
  Nowsim.Event_queue.cancel h;
  Nowsim.Event_queue.cancel h;
  Alcotest.(check int) "live count not negative" 0 (Nowsim.Event_queue.length q)

let test_queue_peek_skips_cancelled () =
  let q = Nowsim.Event_queue.create () in
  let h = Nowsim.Event_queue.add q ~time:1. () in
  ignore (Nowsim.Event_queue.add q ~time:2. ());
  Nowsim.Event_queue.cancel h;
  (match Nowsim.Event_queue.peek_time q with
   | Some t -> check_float "peek" 2. t
   | None -> Alcotest.fail "peek failed")

let prop_queue_sorted_output =
  QCheck.Test.make ~name:"pop yields sorted times" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (float_range 0. 1000.))
    (fun times ->
      let q = Nowsim.Event_queue.create () in
      List.iter (fun t -> ignore (Nowsim.Event_queue.add q ~time:t ())) times;
      let rec drain last =
        match Nowsim.Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* --- Sim engine ------------------------------------------------------------- *)

let test_sim_runs_in_order () =
  let sim = Nowsim.Sim.create () in
  let log = ref [] in
  ignore (Nowsim.Sim.schedule sim ~at:2. (fun s -> log := ("b", Nowsim.Sim.now s) :: !log));
  ignore (Nowsim.Sim.schedule sim ~at:1. (fun s -> log := ("a", Nowsim.Sim.now s) :: !log));
  Nowsim.Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "events in order with clock" [ ("a", 1.); ("b", 2.) ]
    (List.rev !log);
  check_float "clock at end" 2. (Nowsim.Sim.now sim);
  Alcotest.(check int) "events fired" 2 (Nowsim.Sim.events_fired sim)

let test_sim_schedule_during_run () =
  let sim = Nowsim.Sim.create () in
  let fired = ref 0 in
  ignore
    (Nowsim.Sim.schedule sim ~at:1. (fun s ->
         incr fired;
         ignore (Nowsim.Sim.schedule_after s ~delay:1. (fun _ -> incr fired))));
  Nowsim.Sim.run sim;
  Alcotest.(check int) "chained events" 2 !fired;
  check_float "final time" 2. (Nowsim.Sim.now sim)

let test_sim_until_horizon () =
  let sim = Nowsim.Sim.create () in
  let fired = ref 0 in
  ignore (Nowsim.Sim.schedule sim ~at:1. (fun _ -> incr fired));
  ignore (Nowsim.Sim.schedule sim ~at:10. (fun _ -> incr fired));
  Nowsim.Sim.run ~until:5. sim;
  Alcotest.(check int) "only first fired" 1 !fired;
  check_float "clock clamped to horizon" 5. (Nowsim.Sim.now sim)

let test_sim_rejects_past () =
  let sim = Nowsim.Sim.create () in
  ignore
    (Nowsim.Sim.schedule sim ~at:5. (fun s ->
         try
           ignore (Nowsim.Sim.schedule s ~at:1. (fun _ -> ()));
           Alcotest.fail "past scheduling accepted"
         with Error.Error _ -> ()));
  Nowsim.Sim.run sim

(* --- Single-station simulation ---------------------------------------------- *)

let big_bag () =
  (* Plenty of fine-grained work so packing fragmentation is negligible
     and the bag never drains. *)
  Workload.Task.bag_of_sizes (List.init 40_000 (fun _ -> 0.01))

let run_single ?(early_return = false) ~u ~p ~policy ~owner () =
  let opportunity = Model.opportunity ~lifespan:u ~interrupts:p in
  Nowsim.Farm.run_single ~early_return params ~bag:(big_bag ()) ~opportunity
    ~policy ~owner ()

let test_uninterrupted_run_accounting () =
  let committed = Schedule.of_list [ 5.; 5. ] in
  let report =
    run_single ~u:10. ~p:0 ~policy:(Policy.non_adaptive ~committed)
      ~owner:Adversary.none ()
  in
  let m = List.hd report.Nowsim.Farm.per_station in
  check_float "model work" 8. (Nowsim.Metrics.model_work m);
  check_float "overhead = 2c" 2. (Nowsim.Metrics.overhead_time m);
  check_float "no waste" 0. (Nowsim.Metrics.wasted_time m);
  Alcotest.(check int) "episodes" 1 (Nowsim.Metrics.episodes m);
  Alcotest.(check int) "interrupts" 0 (Nowsim.Metrics.interrupts m);
  (* 8 units of work at 0.01 per task = 800 tasks. *)
  Alcotest.(check int) "tasks" 800 (Nowsim.Metrics.tasks_completed m)

let test_interrupted_run_accounting () =
  let committed = Schedule.of_list [ 5.; 5. ] in
  let adv =
    Adversary.make ~name:"k1" ~decide:(fun ctx _ ->
        if ctx.Policy.interrupts_left > 0 then
          Adversary.Interrupt { period = 1; fraction = 1.0 }
        else Adversary.Let_run)
  in
  let report =
    run_single ~u:10. ~p:1 ~policy:(Policy.non_adaptive ~committed) ~owner:adv ()
  in
  let m = List.hd report.Nowsim.Farm.per_station in
  (* Period 1 killed at its last instant (5 wasted); then one long period
     of 5 -> 4 work. *)
  check_float "model work" 4. (Nowsim.Metrics.model_work m);
  check_float "wasted" 5. (Nowsim.Metrics.wasted_time m);
  Alcotest.(check int) "interrupts" 1 (Nowsim.Metrics.interrupts m);
  Alcotest.(check int) "episodes" 2 (Nowsim.Metrics.episodes m)

let test_kill_returns_tasks_to_bag () =
  let bag = Workload.Task.bag_of_sizes (List.init 100 (fun _ -> 0.5)) in
  let opportunity = Model.opportunity ~lifespan:10. ~interrupts:1 in
  let adv =
    Adversary.make ~name:"k1mid" ~decide:(fun ctx _ ->
        if ctx.Policy.interrupts_left > 0 then
          Adversary.Interrupt { period = 1; fraction = 0.9 }
        else Adversary.Let_run)
  in
  let committed = Schedule.of_list [ 6.; 4. ] in
  let report =
    Nowsim.Farm.run_single params ~bag ~opportunity
      ~policy:(Policy.non_adaptive ~committed) ~owner:adv ()
  in
  let m = List.hd report.Nowsim.Farm.per_station in
  (* Period 1 (budget 5 -> 10 tasks) killed; its tasks must be back.
     Then a long period of 10 - 5.4 = 4.6 -> budget 3.6 -> 7 tasks. *)
  Alcotest.(check int) "tasks completed" 7 (Nowsim.Metrics.tasks_completed m);
  Alcotest.(check int) "bag holds the rest" 93 report.Nowsim.Farm.leftover_tasks

(* E7: with the adversarial-oracle owner, the simulator's model work
   equals Game.guaranteed exactly, policy by policy. *)
let test_sim_matches_game_engine () =
  List.iter
    (fun (u, p, policy) ->
       let opp = Model.opportunity ~lifespan:u ~interrupts:p in
       let g = Game.guaranteed params opp policy in
       let adv = Game.optimal_adversary params opp policy in
       let report = run_single ~u ~p ~policy ~owner:adv () in
       let m = List.hd report.Nowsim.Farm.per_station in
       check_float ~eps:1e-6
         (Printf.sprintf "u=%g p=%d %s" u p (Policy.name policy))
         g (Nowsim.Metrics.model_work m))
    [
      (100., 1, Policy.adaptive_guideline);
      (100., 2, Policy.adaptive_guideline);
      (100., 1, Policy.adaptive_calibrated);
      (60., 2, Policy.nonadaptive_guideline params
                 (Model.opportunity ~lifespan:60. ~interrupts:2));
    ]

(* E7 stochastic: any owner behaviour yields at least the guaranteed
   floor for the shipped (monotone) policies. *)
let test_sim_stochastic_above_floor () =
  let u = 150. and p = 2 in
  let opp = Model.opportunity ~lifespan:u ~interrupts:p in
  let g = Game.guaranteed params opp Policy.adaptive_guideline in
  let rng = Csutil.Rng.create ~seed:7 in
  for _ = 1 to 10 do
    let trace = Workload.Interrupt_trace.poisson ~rng ~u ~rate:0.05 ~p in
    let owner = Workload.Interrupt_trace.to_adversary trace in
    let report = run_single ~u ~p ~policy:Policy.adaptive_guideline ~owner () in
    let m = List.hd report.Nowsim.Farm.per_station in
    Alcotest.(check bool) "above floor" true
      (Nowsim.Metrics.model_work m >= g -. 1e-6)
  done

(* Time conservation: work + overhead + waste + idle = lifespan. *)
let test_time_conservation () =
  let u = 97. and p = 2 in
  let rng = Csutil.Rng.create ~seed:31 in
  for seed = 1 to 5 do
    ignore seed;
    let trace = Workload.Interrupt_trace.poisson ~rng ~u ~rate:0.1 ~p in
    let owner = Workload.Interrupt_trace.to_adversary trace in
    let report = run_single ~u ~p ~policy:Policy.adaptive_guideline ~owner () in
    let m = List.hd report.Nowsim.Farm.per_station in
    let total =
      Nowsim.Metrics.model_work m +. Nowsim.Metrics.overhead_time m
      +. Nowsim.Metrics.wasted_time m +. Nowsim.Metrics.idle_time m
    in
    check_float ~eps:1e-6 "conservation" u total
  done

(* Early return: with a drained bag the station finishes ahead of the
   model timing and never does worse on tasks. *)
let test_early_return_with_small_bag () =
  let bag = Workload.Task.bag_of_sizes (List.init 5 (fun _ -> 1.)) in
  let opportunity = Model.opportunity ~lifespan:100. ~interrupts:0 in
  let report =
    Nowsim.Farm.run_single ~early_return:true params ~bag ~opportunity
      ~policy:(Policy.non_adaptive ~committed:(Schedule.of_list [ 50.; 50. ]))
      ~owner:Adversary.none ()
  in
  Alcotest.(check int) "all tasks done" 0 report.Nowsim.Farm.leftover_tasks;
  let m = List.hd report.Nowsim.Farm.per_station in
  Alcotest.(check int) "tasks" 5 (Nowsim.Metrics.tasks_completed m)

(* --- Link phases --------------------------------------------------------------- *)

let test_link_split () =
  let link = Nowsim.Link.create params in
  check_float "send half" 0.5 (Nowsim.Link.setup_send link);
  check_float "recv half" 0.5 (Nowsim.Link.setup_recv link);
  check_float "total c" 1. (Nowsim.Link.setup_total link);
  let link2 = Nowsim.Link.create ~send_fraction:0.25 params in
  check_float "asymmetric send" 0.25 (Nowsim.Link.setup_send link2);
  check_float "asymmetric recv" 0.75 (Nowsim.Link.setup_recv link2);
  (try
     ignore (Nowsim.Link.create ~send_fraction:1.5 params);
     Alcotest.fail "fraction > 1 accepted"
   with Error.Error _ -> ())

let test_link_compute_window () =
  let link = Nowsim.Link.create params in
  (* Normal period: compute spans [c/2, len - c/2]. *)
  let s, e = Nowsim.Link.compute_window link ~len:10. in
  check_float "start" 0.5 s;
  check_float "stop" 9.5 e;
  (* Period shorter than c: empty compute window, phases clipped. *)
  let s, e = Nowsim.Link.compute_window link ~len:0.6 in
  Alcotest.(check bool) "clipped" true (e -. s <= 1e-12);
  Alcotest.(check bool) "within period" true (s >= 0. && e <= 0.6 +. 1e-12);
  (* Exactly c: zero compute. *)
  let s, e = Nowsim.Link.compute_window link ~len:1. in
  check_float "zero compute" 0. (e -. s)

(* --- Metrics invariants ---------------------------------------------------------- *)

let test_metrics_accounting () =
  let m = Nowsim.Metrics.create ~station:"x" in
  Nowsim.Metrics.log_episode_started m;
  Nowsim.Metrics.log_period m
    {
      Nowsim.Metrics.station = "x"; episode = 1; index = 1; start = 0.;
      length = 5.; fate = Nowsim.Metrics.Period_completed; model_work = 4.;
      task_work = 3.5; tasks_completed = 7;
    };
  Nowsim.Metrics.log_period m
    {
      Nowsim.Metrics.station = "x"; episode = 1; index = 2; start = 5.;
      length = 2.; fate = Nowsim.Metrics.Period_killed; model_work = 0.;
      task_work = 0.; tasks_completed = 0;
    };
  Nowsim.Metrics.log_kill m ~elapsed:2.;
  Nowsim.Metrics.log_truncated m ~elapsed:1.;
  Nowsim.Metrics.log_idle m ~duration:3.;
  check_float "model work" 4. (Nowsim.Metrics.model_work m);
  check_float "task work" 3.5 (Nowsim.Metrics.task_work m);
  Alcotest.(check int) "tasks" 7 (Nowsim.Metrics.tasks_completed m);
  check_float "overhead c" 1. (Nowsim.Metrics.overhead_time m);
  check_float "wasted kill+truncate" 3. (Nowsim.Metrics.wasted_time m);
  check_float "idle" 3. (Nowsim.Metrics.idle_time m);
  Alcotest.(check int) "interrupts" 1 (Nowsim.Metrics.interrupts m);
  check_float "fragmentation" 0.5 (Nowsim.Metrics.fragmentation m);
  Alcotest.(check int) "period log" 2 (List.length (Nowsim.Metrics.periods m));
  let s = Nowsim.Metrics.summarize [ m ] in
  check_float "summary work" 4. s.Nowsim.Metrics.total_model_work;
  Alcotest.(check int) "summary stations" 1 s.Nowsim.Metrics.stations

(* --- Owner models ------------------------------------------------------------ *)

let test_renewal_owner_respects_budget () =
  let u = 300. and p = 2 in
  let rng = Csutil.Rng.create ~seed:3 in
  (* Very fast renewal: wants to reclaim constantly, but the budget caps
     it at p. *)
  let owner = Nowsim.Owner_model.renewal ~rng ~risk:(Expected.exponential ~rate:0.5) in
  let report = run_single ~u ~p ~policy:Policy.adaptive_guideline ~owner () in
  let m = List.hd report.Nowsim.Farm.per_station in
  Alcotest.(check int) "capped at p" p (Nowsim.Metrics.interrupts m);
  (* Still above the guaranteed floor. *)
  let opp = Model.opportunity ~lifespan:u ~interrupts:p in
  let g = Game.guaranteed params opp Policy.adaptive_guideline in
  Alcotest.(check bool) "above floor" true
    (Nowsim.Metrics.model_work m >= g -. 1e-6)

let test_renewal_owner_slow_never_fires () =
  let u = 100. in
  let rng = Csutil.Rng.create ~seed:4 in
  (* Mean inter-reclaim of 10^6: effectively absent over a lifespan of
     100 (any seed hitting it would be astronomically unlucky). *)
  let owner = Nowsim.Owner_model.renewal ~rng ~risk:(Expected.exponential ~rate:1e-6) in
  let report = run_single ~u ~p:3 ~policy:Policy.adaptive_guideline ~owner () in
  let m = List.hd report.Nowsim.Farm.per_station in
  Alcotest.(check int) "no reclaims" 0 (Nowsim.Metrics.interrupts m)

let test_day_night_owner_quiet_window () =
  let u = 200. in
  let rng = Csutil.Rng.create ~seed:5 in
  (* Quiet until 150, then reclaims arrive fast: all interrupts must be
     after 150. *)
  let owner = Nowsim.Owner_model.day_night ~rng ~quiet_until:150. ~day_rate:0.5 in
  let report = run_single ~u ~p:2 ~policy:Policy.adaptive_guideline ~owner () in
  let m = List.hd report.Nowsim.Farm.per_station in
  Alcotest.(check bool) "some reclaim fired" true (Nowsim.Metrics.interrupts m > 0);
  List.iter
    (fun (p : Nowsim.Metrics.period_log) ->
       match p.Nowsim.Metrics.fate with
       | Nowsim.Metrics.Period_killed ->
         Alcotest.(check bool) "kill after quiet window" true
           (p.Nowsim.Metrics.start +. p.Nowsim.Metrics.length >= 150. -. 1e-9)
       | Nowsim.Metrics.Period_completed -> ())
    (Nowsim.Metrics.periods m)

let test_day_night_validation () =
  let rng = Csutil.Rng.create ~seed:6 in
  (try
     ignore (Nowsim.Owner_model.day_night ~rng ~quiet_until:(-1.) ~day_rate:1.);
     Alcotest.fail "negative quiet_until accepted"
   with Error.Error _ -> ());
  (try
     ignore (Nowsim.Owner_model.day_night ~rng ~quiet_until:0. ~day_rate:0.);
     Alcotest.fail "zero rate accepted"
   with Error.Error _ -> ())

(* --- Farm (multi-station) ---------------------------------------------------- *)

let test_farm_shared_bag_drains () =
  let bag = Workload.Task.bag_of_sizes (List.init 200 (fun _ -> 0.5)) in
  let mk name start_at =
    Nowsim.Farm.spec ~name ~start_at
      ~opportunity:(Model.opportunity ~lifespan:80. ~interrupts:0)
      ~policy:(Policy.non_adaptive ~committed:(Nonadaptive.equal_periods ~u:80. ~m:8))
      ~owner:Adversary.none ()
  in
  let report = Nowsim.Farm.run params ~bag [ mk "b1" 0.; mk "b2" 5. ] in
  Alcotest.(check int) "bag drained" 0 report.Nowsim.Farm.leftover_tasks;
  (match report.Nowsim.Farm.summary.Nowsim.Metrics.makespan with
   | Some t -> Alcotest.(check bool) "makespan recorded" true (t > 0. && t < 85.)
   | None -> Alcotest.fail "expected makespan");
  Alcotest.(check int) "both stations report" 2
    (List.length report.Nowsim.Farm.per_station);
  let total_tasks =
    List.fold_left
      (fun acc m -> acc + Nowsim.Metrics.tasks_completed m)
      0 report.Nowsim.Farm.per_station
  in
  Alcotest.(check int) "200 tasks total" 200 total_tasks

let test_farm_deterministic () =
  let run () =
    let bag = Workload.Task.bag_of_sizes (List.init 500 (fun _ -> 0.25)) in
    let rng = Csutil.Rng.create ~seed:5 in
    let mk name =
      let u = 60. in
      let trace = Workload.Interrupt_trace.poisson ~rng ~u ~rate:0.05 ~p:2 in
      Nowsim.Farm.spec ~name
        ~opportunity:(Model.opportunity ~lifespan:u ~interrupts:2)
        ~policy:Policy.adaptive_guideline
        ~owner:(Workload.Interrupt_trace.to_adversary trace) ()
    in
    let report = Nowsim.Farm.run params ~bag [ mk "b1"; mk "b2"; mk "b3" ] in
    report.Nowsim.Farm.summary
  in
  let s1 = run () and s2 = run () in
  check_float "same work" s1.Nowsim.Metrics.total_model_work
    s2.Nowsim.Metrics.total_model_work;
  Alcotest.(check int) "same tasks" s1.Nowsim.Metrics.total_tasks
    s2.Nowsim.Metrics.total_tasks;
  Alcotest.(check int) "same interrupts" s1.Nowsim.Metrics.total_interrupts
    s2.Nowsim.Metrics.total_interrupts

(* Idle-steal: one station packs the whole bag into one long period and
   is killed halfway, returning tasks after the other station already
   found the bag dry.  Without ~steal the dry station finished for good
   and the returned tasks strand as leftovers; with it the station
   parks, is woken by the kill, and completes them. *)
let steal_scenario ~steal () =
  let bag = Workload.Task.bag_of_sizes (List.init 10 (fun _ -> 1.)) in
  let kill_mid =
    Adversary.make ~name:"kill-mid" ~decide:(fun ctx _ ->
        if ctx.Policy.interrupts_left > 0 then
          Adversary.Interrupt { period = 1; fraction = 0.5 }
        else Adversary.Let_run)
  in
  let hot =
    (* One period spanning the whole lifespan packs the entire bag
       (budget 11 >= 10), then dies at t = 6 with only enough residual
       left to redo 5 of the 10 returned tasks. *)
    Nowsim.Farm.spec ~name:"hot"
      ~opportunity:(Model.opportunity ~lifespan:12. ~interrupts:1)
      ~policy:(Policy.non_adaptive ~committed:(Schedule.singleton 12.))
      ~owner:kill_mid ()
  in
  let helper =
    (* Starts with the bag already packed away; plenty of lifespan. *)
    Nowsim.Farm.spec ~name:"helper"
      ~opportunity:(Model.opportunity ~lifespan:30. ~interrupts:0)
      ~policy:(Policy.non_adaptive ~committed:(Schedule.singleton 7.))
      ~owner:Adversary.none ()
  in
  Nowsim.Farm.run ~steal params ~bag [ hot; helper ]

let test_farm_no_steal_strands_leftovers () =
  let report = steal_scenario ~steal:false () in
  Alcotest.(check int) "returned tasks strand" 5
    report.Nowsim.Farm.leftover_tasks;
  Alcotest.(check int) "no steals" 0 report.Nowsim.Farm.steals

let test_farm_steal_completes_leftovers () =
  let report = steal_scenario ~steal:true () in
  Alcotest.(check int) "nothing stranded" 0 report.Nowsim.Farm.leftover_tasks;
  Alcotest.(check int) "one steal" 1 report.Nowsim.Farm.steals;
  (match report.Nowsim.Farm.per_station with
   | [ hot; helper ] ->
     Alcotest.(check int) "victim redid what its residual allowed" 5
       (Nowsim.Metrics.tasks_completed hot);
     Alcotest.(check int) "helper did the stranded tasks" 5
       (Nowsim.Metrics.tasks_completed helper)
   | _ -> Alcotest.fail "expected two stations");
  (* Makespan is the true drain instant, after the stolen episode. *)
  (match report.Nowsim.Farm.summary.Nowsim.Metrics.makespan with
   | Some t -> check_float ~eps:1e-6 "drained when helper finished" 13. t
   | None -> Alcotest.fail "expected makespan");
  (* Parked time is charged as idle: every station still conserves its
     lifespan. *)
  List.iter
    (fun m ->
       let u = if Nowsim.Metrics.station m = "hot" then 12. else 30. in
       let total =
         Nowsim.Metrics.model_work m +. Nowsim.Metrics.overhead_time m
         +. Nowsim.Metrics.wasted_time m +. Nowsim.Metrics.idle_time m
       in
       check_float ~eps:1e-6
         (Nowsim.Metrics.station m ^ " conserves under parking")
         u total)
    report.Nowsim.Farm.per_station

let test_farm_empty_specs_rejected () =
  let bag = Workload.Task.bag_of_sizes [ 1. ] in
  (try
     ignore (Nowsim.Farm.run params ~bag []);
     Alcotest.fail "empty specs accepted"
   with Error.Error _ -> ())

(* --- Random-trace engine equivalence (E7, property form) ----------------- *)

(* The game engine and the simulator implement the same semantics for
   arbitrary interrupt traces, including mid-period kills: identical
   work, episode counts and interrupt usage on random configurations. *)
let prop_engines_agree_on_traces =
  let arb =
    QCheck.make
      ~print:(fun (u, p, seed, pol) ->
        Printf.sprintf "u=%g p=%d seed=%d policy=%d" u p seed pol)
      QCheck.Gen.(
        quad
          (map (fun x -> 20. +. (x *. 400.)) (float_bound_exclusive 1.))
          (0 -- 3) (0 -- 10_000) (0 -- 2))
  in
  QCheck.Test.make ~name:"sim = game engine on random traces" ~count:60 arb
    (fun (u, p, seed, pol) ->
      let opp = Model.opportunity ~lifespan:u ~interrupts:p in
      let policy =
        match pol with
        | 0 -> Policy.adaptive_guideline
        | 1 -> Policy.adaptive_calibrated
        | _ -> Policy.nonadaptive_guideline params opp
      in
      let rng = Csutil.Rng.create ~seed in
      let trace = Workload.Interrupt_trace.uniform ~rng ~u:(0.99 *. u) ~a:p in
      let game_outcome =
        Game.run params opp policy (Workload.Interrupt_trace.to_adversary trace)
      in
      let report =
        Nowsim.Farm.run_single params ~bag:(big_bag ()) ~opportunity:opp ~policy
          ~owner:(Workload.Interrupt_trace.to_adversary trace) ()
      in
      let m = List.hd report.Nowsim.Farm.per_station in
      Csutil.Float_ext.approx_eq ~rtol:1e-6 ~atol:1e-6 game_outcome.Game.work
        (Nowsim.Metrics.model_work m)
      && game_outcome.Game.interrupts_used = Nowsim.Metrics.interrupts m
      && List.length game_outcome.Game.episodes = Nowsim.Metrics.episodes m)

(* --- Stress / error paths ---------------------------------------------------- *)

(* A 50-station farm with mixed owners: conservation per station and
   bounded event counts. *)
let test_large_farm_soak () =
  let u = 150. in
  let rng = Csutil.Rng.create ~seed:77 in
  let opportunity = Model.opportunity ~lifespan:u ~interrupts:2 in
  let specs =
    List.init 50 (fun i ->
        let owner =
          match i mod 3 with
          | 0 -> Adversary.none
          | 1 ->
            Workload.Interrupt_trace.to_adversary
              (Workload.Interrupt_trace.poisson ~rng:(Csutil.Rng.split rng) ~u
                 ~rate:0.02 ~p:2)
          | _ -> Adversary.eager_tail
        in
        Nowsim.Farm.spec
          ~name:(Printf.sprintf "s%02d" i)
          ~start_at:(float_of_int (i mod 7))
          ~opportunity ~policy:Policy.adaptive_guideline ~owner ())
  in
  let bag = Workload.Task.bag_of_sizes (List.init 200_000 (fun _ -> 0.05)) in
  let report = Nowsim.Farm.run params ~bag specs in
  Alcotest.(check int) "all stations" 50 (List.length report.Nowsim.Farm.per_station);
  List.iter
    (fun m ->
       let used =
         Nowsim.Metrics.model_work m +. Nowsim.Metrics.overhead_time m
         +. Nowsim.Metrics.wasted_time m +. Nowsim.Metrics.idle_time m
       in
       check_float ~eps:1e-6 (Nowsim.Metrics.station m) u used)
    report.Nowsim.Farm.per_station;
  Alcotest.(check bool) "bounded events" true
    (report.Nowsim.Farm.events_fired < 100_000)

let test_sim_max_events_guard () =
  let sim = Nowsim.Sim.create () in
  (* A self-perpetuating event marching 0.5 per step: the runaway guard
     must trip, and the exception must carry the event count and the
     virtual time reached. *)
  let rec forever s = ignore (Nowsim.Sim.schedule_after s ~delay:0.5 forever) in
  ignore (Nowsim.Sim.schedule sim ~at:0. forever);
  (try
     Nowsim.Sim.run ~max_events:1000 sim;
     Alcotest.fail "runaway not caught"
   with
   | Nowsim.Sim.Event_budget_exhausted { events_fired; simulated_time } ->
     Alcotest.(check int) "events at the guard" 1001 events_fired;
     check_float ~eps:1e-9 "virtual time at the guard" 500. simulated_time)

let test_sim_reentrancy_rejected () =
  let sim = Nowsim.Sim.create () in
  let reentered = ref false in
  ignore
    (Nowsim.Sim.schedule sim ~at:1. (fun s ->
         try Nowsim.Sim.run s with Error.Error _ -> reentered := true));
  Nowsim.Sim.run sim;
  Alcotest.(check bool) "re-entrance rejected" true !reentered

let test_master_rejects_overrunning_policy () =
  let bag = Workload.Task.bag_of_sizes [ 1. ] in
  let opportunity = Model.opportunity ~lifespan:10. ~interrupts:0 in
  let policy = Policy.make ~name:"overrun" ~plan:(fun _ -> Schedule.singleton 20.) in
  (try
     ignore
       (Nowsim.Farm.run_single params ~bag ~opportunity ~policy
          ~owner:Adversary.none ());
     Alcotest.fail "overrun accepted"
   with Error.Error _ -> ())

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "nowsim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "cancellation" `Quick test_queue_cancellation;
          Alcotest.test_case "cancel idempotent" `Quick test_queue_cancel_idempotent;
          Alcotest.test_case "peek skips cancelled" `Quick
            test_queue_peek_skips_cancelled;
        ] );
      ( "sim",
        [
          Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
          Alcotest.test_case "chained scheduling" `Quick test_sim_schedule_during_run;
          Alcotest.test_case "horizon" `Quick test_sim_until_horizon;
          Alcotest.test_case "rejects past" `Quick test_sim_rejects_past;
        ] );
      ( "master",
        [
          Alcotest.test_case "uninterrupted accounting" `Quick
            test_uninterrupted_run_accounting;
          Alcotest.test_case "interrupted accounting" `Quick
            test_interrupted_run_accounting;
          Alcotest.test_case "kill returns tasks" `Quick
            test_kill_returns_tasks_to_bag;
          Alcotest.test_case "E7: matches game engine" `Slow
            test_sim_matches_game_engine;
          Alcotest.test_case "E7: stochastic above floor" `Slow
            test_sim_stochastic_above_floor;
          Alcotest.test_case "time conservation" `Quick test_time_conservation;
          Alcotest.test_case "early return" `Quick test_early_return_with_small_bag;
        ] );
      ( "link",
        [
          Alcotest.test_case "setup split" `Quick test_link_split;
          Alcotest.test_case "compute window" `Quick test_link_compute_window;
        ] );
      ( "metrics",
        [ Alcotest.test_case "accounting" `Quick test_metrics_accounting ] );
      ( "owner_model",
        [
          Alcotest.test_case "renewal respects budget" `Quick
            test_renewal_owner_respects_budget;
          Alcotest.test_case "slow renewal never fires" `Quick
            test_renewal_owner_slow_never_fires;
          Alcotest.test_case "day/night quiet window" `Quick
            test_day_night_owner_quiet_window;
          Alcotest.test_case "day/night validation" `Quick
            test_day_night_validation;
        ] );
      ( "farm",
        [
          Alcotest.test_case "shared bag drains" `Quick test_farm_shared_bag_drains;
          Alcotest.test_case "deterministic" `Quick test_farm_deterministic;
          Alcotest.test_case "no steal strands leftovers" `Quick
            test_farm_no_steal_strands_leftovers;
          Alcotest.test_case "steal completes leftovers" `Quick
            test_farm_steal_completes_leftovers;
          Alcotest.test_case "empty specs" `Quick test_farm_empty_specs_rejected;
        ] );
      ( "stress",
        [
          Alcotest.test_case "50-station soak" `Slow test_large_farm_soak;
          Alcotest.test_case "runaway guard" `Quick test_sim_max_events_guard;
          Alcotest.test_case "re-entrance" `Quick test_sim_reentrancy_rejected;
          Alcotest.test_case "master overrun" `Quick
            test_master_rejects_overrunning_policy;
        ] );
      ("props", qc [ prop_queue_sorted_output; prop_engines_agree_on_traces ]);
    ]
