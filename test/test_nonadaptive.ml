(* Tests for the non-adaptive regime (paper Section 3.1): the guideline
   schedule, the interrupt-set work formula, and the exact adversary. *)

open Cyclesteal

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let params = Model.params ~c:1.

let test_equal_periods () =
  let s = Nonadaptive.equal_periods ~u:10. ~m:4 in
  Alcotest.(check int) "m" 4 (Schedule.length s);
  check_float "each" 2.5 (Schedule.period s 1);
  check_float "total" 10. (Schedule.total s);
  Alcotest.check_raises "m = 0"
    (Error.Error (Error.Invalid_params "Nonadaptive.equal_periods: m must be positive"))
    (fun () -> ignore (Nonadaptive.equal_periods ~u:10. ~m:0))

let test_guideline_shape () =
  (* c = 1, u = 100, p = 1: m = floor(sqrt(100)) = 10 equal periods. *)
  let s = Nonadaptive.guideline params ~u:100. ~p:1 in
  Alcotest.(check int) "m = sqrt(pU/c)" 10 (Schedule.length s);
  check_float "period = sqrt(cU/p)" 10. (Schedule.period s 1);
  check_float "covers u" 100. (Schedule.total s);
  (* p = 4 doubles the period count. *)
  Alcotest.(check int) "m scales with sqrt p" 20
    (Schedule.length (Nonadaptive.guideline params ~u:100. ~p:4))

let test_guideline_p0 () =
  (* Proposition 4.1(d): a single long period. *)
  let s = Nonadaptive.guideline params ~u:50. ~p:0 in
  Alcotest.(check int) "one period" 1 (Schedule.length s);
  check_float "full lifespan" 50. (Schedule.total s)

let test_guideline_small_u () =
  (* Lifespans so short the formula gives m = 0 must still yield a valid
     schedule. *)
  let s = Nonadaptive.guideline params ~u:0.5 ~p:1 in
  Alcotest.(check bool) "at least one period" true (Schedule.length s >= 1);
  check_float "covers u" 0.5 (Schedule.total s)

(* The paper's W(S) formula, hand-checked on a small schedule.
   S = 4,3,2,1 over u = 10, c = 1. *)
let test_work_given_interrupts_cases () =
  let s = Schedule.of_list [ 4.; 3.; 2.; 1. ] in
  let w = Nonadaptive.work_given_interrupts params ~u:10. s in
  (* No interrupts: (4-1)+(3-1)+(2-1)+(1-1) = 6. *)
  check_float "none" 6. (w ~p:2 ~interrupted:[]);
  (* One interrupt (budget 2, so no consolidation): lose period 2. *)
  check_float "partial budget" 4. (w ~p:2 ~interrupted:[ 2 ]);
  (* Full budget p=1 on period 2: consolidation; completed period 1 plus
     one long period of u - T_2 = 3: (4-1) + (3-1) = 5. *)
  check_float "consolidated" 5. (w ~p:1 ~interrupted:[ 2 ]);
  (* Full budget p=2 on periods 1,4: periods 2,3 complete before i_p = 4;
     remainder u - T_4 = 0: (3-1)+(2-1) = 3. *)
  check_float "both used" 3. (w ~p:2 ~interrupted:[ 1; 4 ])

let test_work_given_interrupts_validation () =
  let s = Schedule.of_list [ 4.; 3.; 2.; 1. ] in
  let w = Nonadaptive.work_given_interrupts params ~u:10. s in
  (try
     ignore (w ~p:2 ~interrupted:[ 2; 2 ]);
     Alcotest.fail "duplicate indices accepted"
   with Error.Error _ -> ());
  (try
     ignore (w ~p:2 ~interrupted:[ 3; 2 ]);
     Alcotest.fail "unsorted indices accepted"
   with Error.Error _ -> ());
  (try
     ignore (w ~p:2 ~interrupted:[ 0 ]);
     Alcotest.fail "index 0 accepted"
   with Error.Error _ -> ());
  (try
     ignore (w ~p:1 ~interrupted:[ 1; 2 ]);
     Alcotest.fail "over budget accepted"
   with Error.Error _ -> ())

(* The closed form U - 2 sqrt(pcU) + pc matches the exact adversary on
   the guideline schedule whenever sqrt(pU/c) is an integer (no floor
   noise). *)
let test_closed_form_matches_exact () =
  List.iter
    (fun (u, p) ->
       let s = Nonadaptive.guideline params ~u ~p in
       let worst, _ = Nonadaptive.worst_case params ~u ~p s in
       check_float
         (Printf.sprintf "u=%g p=%d" u p)
         (Nonadaptive.closed_form params ~u ~p)
         worst)
    [ (100., 1); (400., 1); (100., 4); (900., 4) ]

let test_closed_form_near_exact_general () =
  (* With floor noise the exact value stays within O(1) = a few c of the
     closed form. *)
  List.iter
    (fun (u, p) ->
       let s = Nonadaptive.guideline params ~u ~p in
       let worst, _ = Nonadaptive.worst_case params ~u ~p s in
       let predicted = Nonadaptive.closed_form params ~u ~p in
       Alcotest.(check bool)
         (Printf.sprintf "u=%g p=%d within O(1)" u p)
         true
         (Float.abs (worst -. predicted) <= 3. *. Model.c params))
    [ (137., 1); (1000., 2); (5000., 3); (777., 2) ]

(* The exact adversary really is optimal: no interrupt set the paper's
   formula admits does better, exhaustively on a small instance. *)
let test_worst_case_is_minimal () =
  let u = 30. in
  let p = 2 in
  let s = Schedule.of_list [ 7.; 6.; 5.; 5.; 4.; 3. ] in
  let worst, witness = Nonadaptive.worst_case params ~u ~p s in
  (* Enumerate all interrupt sets of size <= 2 (the empty set seeds the
     reference). *)
  let m = Schedule.length s in
  let best = ref (Nonadaptive.work_given_interrupts params ~u ~p s ~interrupted:[]) in
  for i = 0 to m do
    for j = i + 1 to m do
      let set = List.filter (fun k -> k >= 1) [ i; j ] in
      let set = List.sort_uniq compare set in
      if List.length set <= p then begin
        let w = Nonadaptive.work_given_interrupts params ~u ~p s ~interrupted:set in
        if w < !best then best := w
      end
    done
  done;
  (* Also size-0 and size-1 sets are covered above via i=0. *)
  check_float "matches exhaustive minimum" !best worst;
  check_float "witness reproduces value" worst
    (Nonadaptive.work_given_interrupts params ~u ~p s ~interrupted:witness)

(* The paper's stated adversary strategy (kill the last p periods) is
   optimal against the equal-period guideline. *)
let test_last_p_strategy_optimal_on_guideline () =
  List.iter
    (fun (u, p) ->
       let s = Nonadaptive.guideline params ~u ~p in
       let worst, _ = Nonadaptive.worst_case params ~u ~p s in
       let last_p = Nonadaptive.last_p_periods_interrupts s ~p in
       let w_last =
         Nonadaptive.work_given_interrupts params ~u ~p s ~interrupted:last_p
       in
       check_float (Printf.sprintf "u=%g p=%d" u p) worst w_last)
    [ (100., 1); (100., 2); (400., 3) ]

(* The guideline's m is within O(1) of the best equal-period count. *)
let test_guideline_m_near_best () =
  List.iter
    (fun (u, p) ->
       let best_m, best_w = Nonadaptive.best_equal_period_count params ~u ~p ~max_m:60 in
       let s = Nonadaptive.guideline params ~u ~p in
       let w, _ = Nonadaptive.worst_case params ~u ~p s in
       Alcotest.(check bool)
         (Printf.sprintf "u=%g p=%d: guideline m=%d vs best m=%d" u p
            (Schedule.length s) best_m)
         true
         (w >= best_w -. (2. *. Model.c params)))
    [ (100., 1); (200., 2); (300., 3) ]

let test_worst_case_p0 () =
  let s = Schedule.of_list [ 5.; 5. ] in
  let w, set = Nonadaptive.worst_case params ~u:10. ~p:0 s in
  check_float "no adversary" 8. w;
  Alcotest.(check (list int)) "empty witness" [] set

(* --- QCheck properties -------------------------------------------------- *)

let arb_schedule_u =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 12) (map (fun x -> 0.5 +. (x *. 8.)) (float_bound_exclusive 1.)))
  in
  QCheck.make ~print:QCheck.Print.(list float) gen

let prop_worst_case_le_uninterrupted =
  QCheck.Test.make ~name:"worst case <= uninterrupted work" ~count:200
    QCheck.(pair arb_schedule_u (int_bound 3))
    (fun (l, p) ->
      let s = Schedule.of_list l in
      let u = Schedule.total s in
      let w, _ = Nonadaptive.worst_case params ~u ~p s in
      w <= Schedule.work_if_uninterrupted params s +. 1e-9)

let prop_worst_case_antitone_in_p =
  QCheck.Test.make ~name:"worst case non-increasing in p" ~count:200
    arb_schedule_u (fun l ->
      let s = Schedule.of_list l in
      let u = Schedule.total s in
      let w p = fst (Nonadaptive.worst_case params ~u ~p s) in
      let ok = ref true in
      for p = 0 to 3 do
        if w (p + 1) > w p +. 1e-9 then ok := false
      done;
      !ok)

let prop_witness_achieves_value =
  QCheck.Test.make ~name:"adversary witness achieves the DP value" ~count:200
    QCheck.(pair arb_schedule_u (int_bound 3))
    (fun (l, p) ->
      let s = Schedule.of_list l in
      let u = Schedule.total s in
      let w, witness = Nonadaptive.worst_case params ~u ~p s in
      Csutil.Float_ext.approx_eq ~atol:1e-9 w
        (Nonadaptive.work_given_interrupts params ~u ~p s ~interrupted:witness))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "nonadaptive"
    [
      ( "nonadaptive",
        [
          Alcotest.test_case "equal periods" `Quick test_equal_periods;
          Alcotest.test_case "guideline shape" `Quick test_guideline_shape;
          Alcotest.test_case "guideline p=0" `Quick test_guideline_p0;
          Alcotest.test_case "guideline small u" `Quick test_guideline_small_u;
          Alcotest.test_case "W(S) formula cases" `Quick
            test_work_given_interrupts_cases;
          Alcotest.test_case "W(S) validation" `Quick
            test_work_given_interrupts_validation;
          Alcotest.test_case "closed form exact points" `Quick
            test_closed_form_matches_exact;
          Alcotest.test_case "closed form O(1) general" `Quick
            test_closed_form_near_exact_general;
          Alcotest.test_case "adversary DP is minimal" `Quick
            test_worst_case_is_minimal;
          Alcotest.test_case "last-p strategy optimal" `Quick
            test_last_p_strategy_optimal_on_guideline;
          Alcotest.test_case "guideline m near best" `Quick
            test_guideline_m_near_best;
          Alcotest.test_case "worst case p=0" `Quick test_worst_case_p0;
        ] );
      ( "props",
        qc
          [
            prop_worst_case_le_uninterrupted;
            prop_worst_case_antitone_in_p;
            prop_witness_achieves_value;
          ] );
    ]
