(* Tests for the schedule-advice service: JSON round-trips, protocol
   parsing, the LRU table cache, the batch engine, the router's
   placement and failure recovery, and the serving loop end to end.
   The load-bearing property throughout: a daemon response is
   byte-identical to a direct library call serialized through the same
   protocol — whatever the wire mode, concurrency or shard count. *)

open Service

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Json ----------------------------------------------------------------- *)

let test_json_print () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Float 1.5; Json.Bool true; Json.Null ]);
        ("s", Json.String "x\"y\nz");
      ]
  in
  Alcotest.(check string) "compact print"
    {|{"a":1,"b":[1.5,true,null],"s":"x\"y\nz"}|} (Json.to_string v)

let test_json_parse () =
  (match Json.of_string {| {"a": [1, 2.5, "x"], "b": {"c": null}} |} with
   | Ok v ->
     Alcotest.(check bool) "a member" true
       (Json.member "a" v
        = Some (Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]));
     Alcotest.(check bool) "nested" true
       (Option.bind (Json.member "b" v) (Json.member "c") = Some Json.Null)
   | Error e -> Alcotest.fail e);
  (match Json.of_string {|"Aé\t"|} with
   | Ok (Json.String s) -> Alcotest.(check string) "unicode escape" "A\xc3\xa9\t" s
   | _ -> Alcotest.fail "unicode escape did not parse")

let test_json_parse_errors () =
  List.iter
    (fun bad ->
       match Json.of_string bad with
       | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
       | Error e ->
         Alcotest.(check bool) "offset in message" true
           (contains ~sub:"offset" e))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated"; "{'a':1}" ]

let test_json_float_round_trip () =
  List.iter
    (fun x ->
       let s = Json.to_string (Json.Float x) in
       match Json.of_string s with
       | Ok v ->
         (match Json.to_float v with
          | Some y ->
            Alcotest.(check bool) (Printf.sprintf "%.17g round-trips" x) true
              (x = y)
          | None -> Alcotest.fail "not a number")
       | Error e -> Alcotest.fail e)
    [ 0.; 1.5; -3.25; 1. /. 3.; 86399.999999999996; 1e-300; 1.7e308; 0.1 ]

(* Random JSON values for the printer/parser round-trip property. *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Int n) (int_range (-1000000) 1000000);
        map (fun x -> Json.Float x) (float_range (-1e6) 1e6);
        map (fun s -> Json.String s) (string_size ~gen:printable (0 -- 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (0 -- 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (0 -- 4)
                 (pair (string_size ~gen:printable (1 -- 6)) (value (depth - 1))))
          );
        ]
  in
  value 3

let prop_json_round_trip =
  QCheck.Test.make ~name:"Json.to_string round-trips through of_string"
    ~count:300
    (QCheck.make json_gen ~print:(fun v -> Json.to_string v))
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error _ -> false)

(* The fast printer must be byte-identical to the reference printer —
   the daemon's whole byte-identity story rests on it. *)
let prop_json_ref_printer =
  QCheck.Test.make ~name:"Json.to_string matches the reference printer"
    ~count:300
    (QCheck.make json_gen ~print:(fun v -> Json.Ref.to_string v))
    (fun v -> String.equal (Json.to_string v) (Json.Ref.to_string v))

let prop_float_repr_matches_ref =
  QCheck.Test.make ~name:"fast float rendering matches the reference"
    ~count:2000 QCheck.float (fun x ->
      String.equal
        (Json.to_string (Json.Float x))
        (Json.Ref.to_string (Json.Float x)))

let test_json_float_repr_edges () =
  List.iter
    (fun x ->
       Alcotest.(check string)
         (Printf.sprintf "repr of %h matches reference" x)
         (Json.Ref.to_string (Json.Float x))
         (Json.to_string (Json.Float x)))
    [
      0.; -0.; 1.; -1.; 0.1; 0.5; 1. /. 3.; 86399.999999999996;
      494.63261480389338; 999999999999.; 1e12; 1e12 -. 1.; -1e12; 1e13;
      4294967296.; 1e-300; 4.9e-324; 2.2250738585072014e-308; 1.7e308;
      max_float; nan; infinity; neg_infinity; 1.5; -3.25; 6.02214076e23;
    ]

(* --- Protocol ------------------------------------------------------------- *)

let roundtrip req =
  let line = Json.to_string (Protocol.request_to_json ~id:(Json.Int 7) req) in
  let e = Protocol.parse_line line in
  Alcotest.(check bool) ("id echoed for " ^ line) true (e.Protocol.id = Json.Int 7);
  match e.Protocol.request with
  | Ok req' -> Alcotest.(check bool) ("round-trip " ^ line) true (req = req')
  | Error err -> Alcotest.fail (Cyclesteal.Error.to_string err)

let test_protocol_round_trip () =
  roundtrip (Protocol.Advise { c = 30.; u = 86400.; p = 3 });
  roundtrip (Protocol.Schedule { c = 1.; u = 1000.; p = 2; regime = "calibrated" });
  roundtrip
    (Protocol.Evaluate
       { c = 1.; u = 20.; p = 1; policy = "adaptive"; periods = Some [ 8.; 7.; 5. ] });
  roundtrip
    (Protocol.Evaluate
       { c = 2.; u = 500.; p = 2; policy = "geometric"; periods = None });
  roundtrip (Protocol.Dp_query { c_ticks = 10; l = 2000; p = 3 });
  roundtrip Protocol.Strategies;
  roundtrip (Protocol.Stats { reset = false });
  roundtrip (Protocol.Stats { reset = true })

let expect_error line needle =
  let e = Protocol.parse_line line in
  match e.Protocol.request with
  | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %s" line)
  | Error err ->
    let msg = Cyclesteal.Error.to_string err in
    Alcotest.(check bool)
      (Printf.sprintf "%s rejected with %S (got %S)" line needle msg)
      true (contains ~sub:needle msg)

let test_protocol_errors () =
  expect_error "not json at all" "JSON parse error";
  expect_error "[1,2,3]" "must be a JSON object";
  expect_error {|{"id":1}|} "missing field \"op\"";
  expect_error {|{"op":"frobnicate"}|} "unknown op";
  expect_error {|{"op":"advise","c":-1}|} "c must be positive";
  expect_error {|{"op":"advise","u":0}|} "U must be positive";
  expect_error {|{"op":"advise","p":-2}|} "p must be non-negative";
  expect_error {|{"op":"advise","c":"ten"}|} "must be a number";
  expect_error {|{"op":"dp","c_ticks":0}|} "c_ticks must be >= 1";
  expect_error {|{"op":"evaluate","periods":[1,"x"]}|} "only numbers";
  (* The id is still echoed from a request whose body fails validation. *)
  let e = Protocol.parse_line {|{"id":"q-1","op":"advise","c":-1}|} in
  Alcotest.(check bool) "id survives invalid body" true
    (e.Protocol.id = Json.String "q-1")

let test_protocol_handle_errors () =
  let msg_of err = Cyclesteal.Error.to_string err in
  (match Protocol.handle (Protocol.Schedule { c = 1.; u = 10.; p = 1; regime = "bogus" }) with
   | Error err ->
     Alcotest.(check bool) "unknown regime" true
       (contains ~sub:"unknown regime" (msg_of err))
   | Ok _ -> Alcotest.fail "bogus regime accepted");
  (match
     Protocol.handle
       (Protocol.Evaluate
          { c = 1.; u = 10.; p = 1; policy = "bogus"; periods = None })
   with
   | Error err ->
     Alcotest.(check bool) "unknown policy" true
       (contains ~sub:"unknown policy" (msg_of err))
   | Ok _ -> Alcotest.fail "bogus policy accepted");
  (match
     Protocol.handle
       (Protocol.Evaluate
          { c = 1.; u = 10.; p = 1; policy = "adaptive"; periods = Some [ 3.; 3. ] })
   with
   | Error err ->
     Alcotest.(check bool) "periods sum" true
       (contains ~sub:"periods sum" (msg_of err))
   | Ok _ -> Alcotest.fail "mismatched periods accepted");
  match Protocol.handle (Protocol.Stats { reset = false }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stats answered outside the daemon"

let test_protocol_strategies () =
  match Protocol.handle Protocol.Strategies with
  | Error err -> Alcotest.fail (Cyclesteal.Error.to_string err)
  | Ok payload ->
    let s = Json.to_string payload in
    List.iter
      (fun name ->
         Alcotest.(check bool)
           (Printf.sprintf "lists %S" name)
           true
           (contains ~sub:(Printf.sprintf {|"%s"|} name) s))
      [ "naive"; "fixed_chunk"; "geometric"; "guideline"; "dp_exact"; "adaptive" ];
    (* Regimes ride along so schedule clients can discover them too. *)
    Alcotest.(check bool) "lists regimes" true (contains ~sub:"opt-p1" s)

(* --- Cache ---------------------------------------------------------------- *)

let test_cache_canonicalization () =
  let k1 = Cache.canonical ~c:10 ~p:3 ~l:1900 in
  let k2 = Cache.canonical ~c:10 ~p:4 ~l:2048 in
  Alcotest.(check bool) "nearby queries share a key" true (k1 = k2);
  let k3 = Cache.canonical ~c:11 ~p:3 ~l:1900 in
  Alcotest.(check bool) "c is kept exact" true (k1 <> k3);
  let small = Cache.canonical ~c:1 ~p:0 ~l:10 in
  Alcotest.(check int) "l floor" Cache.min_l (small.Cache.max_l);
  Alcotest.(check int) "p floor" Cache.min_p (small.Cache.max_p)

let test_cache_sharing_and_correctness () =
  let cache = Cache.create ~capacity:4 () in
  let a = Cache.find_or_solve cache ~c:10 ~p:2 ~l:300 in
  let b = Cache.find_or_solve cache ~c:10 ~p:1 ~l:290 in
  Alcotest.(check bool) "one physical table" true (a == b);
  (* Values read from the shared canonical table equal a direct solve at
     the query's own bounds. *)
  List.iter
    (fun (p, l) ->
       let direct = Cyclesteal.Dp.solve ~c:10 ~max_p:p ~max_l:l in
       Alcotest.(check int)
         (Printf.sprintf "value at p=%d l=%d" p l)
         (Cyclesteal.Dp.value direct ~p ~l)
         (Cyclesteal.Dp.value a ~p ~l);
       Alcotest.(check (list int))
         (Printf.sprintf "episode at p=%d l=%d" p l)
         (Cyclesteal.Dp.optimal_episode direct ~p ~l)
         (Cyclesteal.Dp.optimal_episode a ~p ~l))
    [ (2, 300); (1, 290); (0, 77) ];
  let s = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "one resident table" 1 s.Cache.resident;
  Alcotest.(check bool) "footprint accounted" true (s.Cache.resident_bytes > 0)

let test_cache_growth () =
  (* A query past the resident table's bounds grows it in place: same
     physical table, one growth, no new resident entry -- and the grown
     region agrees with a fresh solve. *)
  let cache = Cache.create ~capacity:4 () in
  let a = Cache.find_or_solve cache ~c:10 ~p:2 ~l:300 in
  let b = Cache.find_or_solve cache ~c:10 ~p:5 ~l:700 in
  Alcotest.(check bool) "growth keeps the table" true (a == b);
  let s = Cache.stats cache in
  Alcotest.(check int) "one growth" 1 s.Cache.growths;
  Alcotest.(check int) "still one resident table" 1 s.Cache.resident;
  let direct = Cyclesteal.Dp.solve ~c:10 ~max_p:5 ~max_l:700 in
  List.iter
    (fun (p, l) ->
       Alcotest.(check int)
         (Printf.sprintf "grown value at p=%d l=%d" p l)
         (Cyclesteal.Dp.value direct ~p ~l)
         (Cyclesteal.Dp.value b ~p ~l))
    [ (0, 77); (2, 300); (3, 450); (5, 700) ]

let test_cache_lru_eviction () =
  (* Identity is the tick cost c alone (bounds only grow a resident
     table), so eviction needs three distinct costs. *)
  let cache = Cache.create ~capacity:2 () in
  let k c = Cache.find_or_solve cache ~c ~p:1 ~l:200 in
  let t3 = k 3 in
  let _t5 = k 5 in
  (* Touch the c=3 table so the c=5 table is the LRU victim. *)
  let t3' = k 3 in
  Alcotest.(check bool) "hit keeps the table" true (t3 == t3');
  let _t7 = k 7 in
  let s = Cache.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "capacity respected" 2 s.Cache.resident;
  (* The touched table survived; the untouched one was evicted. *)
  let t3'' = k 3 in
  Alcotest.(check bool) "MRU survived" true (t3 == t3'');
  let s = Cache.stats cache in
  Alcotest.(check int) "three solves so far" 3 s.Cache.misses;
  let _t5' = k 5 in
  let s' = Cache.stats cache in
  Alcotest.(check int) "evicted table re-solves" (s.Cache.misses + 1)
    s'.Cache.misses

let test_cache_preload_groups_solves () =
  let cache = Cache.create ~capacity:8 () in
  let keys =
    [
      Cache.canonical ~c:10 ~p:2 ~l:300;
      Cache.canonical ~c:10 ~p:1 ~l:290;  (* same canonical key *)
      Cache.canonical ~c:5 ~p:1 ~l:300;
    ]
  in
  Cache.preload cache ~keys ~domains:2 ();
  let s = Cache.stats cache in
  Alcotest.(check int) "two distinct solves" 2 s.Cache.misses;
  Alcotest.(check int) "two resident" 2 s.Cache.resident;
  (* A later preload of present keys solves nothing. *)
  Cache.preload cache ~keys ~domains:2 ();
  let s' = Cache.stats cache in
  Alcotest.(check int) "no further solves" s.Cache.misses s'.Cache.misses

(* --- Single-flight coalescing ---------------------------------------------- *)

(* N domains racing one cold key: the flight registry admits exactly
   one leader (one solve, one miss) and every other domain adopts the
   same physical table, counting one hit.  A joiner that actually
   parked also ticks [coalesced] — how many parked is scheduling-
   dependent, so only its bound is asserted. *)
let test_cache_single_flight_dup_cold () =
  let cache = Cache.create ~capacity:4 () in
  let n = 6 in
  let barrier = Atomic.make 0 in
  let worker () =
    Atomic.incr barrier;
    while Atomic.get barrier < n do
      Domain.cpu_relax ()
    done;
    Cache.find_or_solve cache ~c:13 ~p:3 ~l:900
  in
  let doms = List.init (n - 1) (fun _ -> Domain.spawn worker) in
  let t0 = worker () in
  let tables = t0 :: List.map Domain.join doms in
  List.iter
    (fun t -> Alcotest.(check bool) "one physical table" true (t == t0))
    tables;
  let s = Cache.stats cache in
  Alcotest.(check int) "exactly one solve" 1 s.Cache.misses;
  Alcotest.(check int) "every joiner hit" (n - 1) s.Cache.hits;
  Alcotest.(check bool) "coalesced bounded by joiners" true
    (s.Cache.coalesced >= 0 && s.Cache.coalesced <= n - 1);
  let direct = Cyclesteal.Dp.solve ~c:13 ~max_p:3 ~max_l:900 in
  Alcotest.(check int) "coalesced table answers correctly"
    (Cyclesteal.Dp.value direct ~p:3 ~l:900)
    (Cyclesteal.Dp.value t0 ~p:3 ~l:900)

(* Two concurrent preloads of one identity coalesce on a single solve
   (preload routes through the same single-flight path as queries). *)
let test_cache_preload_coalesces () =
  let cache = Cache.create ~capacity:4 () in
  let keys = [ Cache.canonical ~c:17 ~p:2 ~l:500 ] in
  let barrier = Atomic.make 0 in
  let worker () =
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do
      Domain.cpu_relax ()
    done;
    Cache.preload cache ~keys ~domains:1 ()
  in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  let s = Cache.stats cache in
  Alcotest.(check int) "one solve across both preloads" 1 s.Cache.misses;
  Alcotest.(check int) "one resident table" 1 s.Cache.resident

(* N domains racing one cold evaluate: one solver build, every other
   domain adopts the resident solver, byte-identical responses. *)
let test_cache_solver_single_flight () =
  let cache = Cache.create ~capacity:4 () in
  Cache.reset_counters cache;
  let req =
    Protocol.Evaluate
      { c = 1.; u = 150.; p = 2; policy = "adaptive"; periods = None }
  in
  let n = 5 in
  let barrier = Atomic.make 0 in
  let worker () =
    Atomic.incr barrier;
    while Atomic.get barrier < n do
      Domain.cpu_relax ()
    done;
    match Protocol.handle ~cache req with
    | Ok json -> Json.to_string json
    | Error e -> failwith (Cyclesteal.Error.to_string e)
  in
  let doms = List.init (n - 1) (fun _ -> Domain.spawn worker) in
  let first = worker () in
  let replies = first :: List.map Domain.join doms in
  List.iter
    (fun r -> Alcotest.(check string) "byte-identical replies" first r)
    replies;
  let s = Cache.stats cache in
  Alcotest.(check int) "one solver build" 1 s.Cache.solver_misses;
  Alcotest.(check int) "every joiner hit" (n - 1) s.Cache.solver_hits;
  Alcotest.(check bool) "solver coalesced bounded by joiners" true
    (s.Cache.solver_coalesced >= 0 && s.Cache.solver_coalesced <= n - 1)

(* The stats surface carries the DP kernel's work counters, and a reset
   zeroes them along with the cache counters (the daemon's
   [stats reset] path calls this same Cache.reset_counters). *)
let test_cache_kernel_counters () =
  let cache = Cache.create ~capacity:4 () in
  Cache.reset_counters cache;
  ignore (Cache.find_or_solve cache ~c:9 ~p:1 ~l:300);
  let s = Cache.stats cache in
  let k = s.Cache.kernel in
  Alcotest.(check bool) "cells counted" true (k.Cyclesteal.Dp.cells_filled > 0);
  Alcotest.(check bool) "prune counted" true
    (k.Cyclesteal.Dp.candidates_pruned > 0);
  let json = Stats.to_json (Stats.create ()) ~cache:s in
  (match Json.member "kernel" json with
   | Some (Json.Obj fields) ->
     List.iter
       (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "stats json has kernel.%s" name)
            true (List.mem_assoc name fields))
       [
         "cells_filled"; "candidates_visited"; "candidates_pruned";
         "parallel_fills";
       ]
   | _ -> Alcotest.fail "stats json lacks a kernel object");
  Cache.reset_counters cache;
  Alcotest.(check int) "reset zeroes kernel counters" 0
    (Cache.stats cache).Cache.kernel.Cyclesteal.Dp.cells_filled

(* Repeated evaluate requests through the cache hit the resident game
   solver; the stats surface carries the solver-cache and game counters,
   and reset zeroes them (the daemon's [stats reset] path). *)
let test_cache_resident_solver () =
  let cache = Cache.create ~capacity:4 () in
  Cache.reset_counters cache;
  let req =
    Protocol.Evaluate
      { c = 1.; u = 120.; p = 2; policy = "adaptive"; periods = None }
  in
  let answer () =
    match Protocol.handle ~cache req with
    | Ok json -> Json.to_string json
    | Error e -> Alcotest.fail (Cyclesteal.Error.to_string e)
  in
  let first = answer () in
  let s1 = Cache.stats cache in
  Alcotest.(check int) "first evaluate misses" 1 s1.Cache.solver_misses;
  Alcotest.(check int) "one solver resident" 1 s1.Cache.solvers_resident;
  let states_cold = s1.Cache.game.Cyclesteal.Game.states in
  Alcotest.(check bool) "cold solve expanded states" true (states_cold > 0);
  let second = answer () in
  let s2 = Cache.stats cache in
  Alcotest.(check int) "second evaluate hits" 1 s2.Cache.solver_hits;
  Alcotest.(check string) "warm response byte-identical" first second;
  (* The warm evaluate answers from the resident memo: the replay may
     touch a handful of fresh states, not re-solve the instance. *)
  Alcotest.(check bool) "warm evaluate reuses the memo" true
    (s2.Cache.game.Cyclesteal.Game.states - states_cold < states_cold / 2);
  (* Un-cached evaluation answers identically (fresh solver, same
     canonical states). *)
  (match Protocol.handle req with
   | Ok json ->
     Alcotest.(check string) "matches direct evaluate" first
       (Json.to_string json)
   | Error e -> Alcotest.fail (Cyclesteal.Error.to_string e));
  let json = Stats.to_json (Stats.create ()) ~cache:s2 in
  (match Json.member "solver_cache" json with
   | Some (Json.Obj fields) ->
     List.iter
       (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "stats json has solver_cache.%s" name)
            true (List.mem_assoc name fields))
       [
         "hits"; "misses"; "evictions"; "growths"; "solvers_resident";
         "resident_bytes";
       ]
   | _ -> Alcotest.fail "stats json lacks a solver_cache object");
  (match Json.member "game" json with
   | Some (Json.Obj fields) ->
     List.iter
       (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "stats json has game.%s" name)
            true (List.mem_assoc name fields))
       [ "states"; "memo_hits"; "plans_computed"; "parallel_fills" ]
   | _ -> Alcotest.fail "stats json lacks a game object");
  Cache.reset_counters cache;
  let z = Cache.stats cache in
  Alcotest.(check int) "reset zeroes solver hits" 0 z.Cache.solver_hits;
  Alcotest.(check int) "reset zeroes solver misses" 0 z.Cache.solver_misses;
  Alcotest.(check int) "reset zeroes game states" 0
    z.Cache.game.Cyclesteal.Game.states

(* --- A mixed workload ------------------------------------------------------ *)

(* >= 100 mixed advise/schedule/evaluate/dp requests with varying
   parameters, as JSON lines.  Kept cheap enough for the exact minimax
   evaluator (u <= 400) while exercising every op and the cache. *)
let mixed_request_lines () =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let policies =
    [| "nonadaptive"; "adaptive"; "calibrated"; "one-period"; "geometric" |]
  in
  let regimes = [| "nonadaptive"; "adaptive"; "calibrated"; "opt-p1" |] in
  for i = 0 to 29 do
    add {|{"id":%d,"op":"advise","c":%d,"u":%d,"p":%d}|} (4 * i)
      ((i mod 5) + 1)
      (500 + (137 * i))
      (i mod 4);
    add {|{"id":%d,"op":"schedule","c":1,"u":%d,"p":%d,"regime":"%s"}|}
      ((4 * i) + 1)
      (100 + (31 * i))
      ((i mod 3) + if regimes.(i mod 4) = "opt-p1" then 0 else 0)
      regimes.(i mod 4);
    add {|{"id":%d,"op":"evaluate","c":1,"u":%d,"p":%d,"policy":"%s"}|}
      ((4 * i) + 2)
      (50 + (23 * i))
      (i mod 3)
      policies.(i mod 5);
    add {|{"id":%d,"op":"dp","c_ticks":%d,"l":%d,"p":%d}|}
      ((4 * i) + 3)
      (5 + (5 * (i mod 2)))
      (100 + (29 * i))
      (i mod 4)
  done;
  (* A custom-periods evaluation and some malformed lines for error
     paths. *)
  add {|{"id":120,"op":"evaluate","c":1,"u":20,"p":1,"periods":[8,7,5]}|};
  add {|{"id":121,"op":"advise","c":-3}|};
  add {|{"id":122,"op":"strategies"}|};
  add "garbage that is not json";
  List.rev !lines

(* The reference answer: parse and evaluate each line directly against
   the library, no cache, no batching, no daemon. *)
let direct_response line =
  let e = Protocol.parse_line line in
  let result = Result.bind e.Protocol.request (fun req -> Protocol.handle req) in
  Protocol.response_to_string ~id:e.Protocol.id result

let test_batch_matches_direct () =
  let lines = mixed_request_lines () in
  Alcotest.(check bool) "at least 100 requests" true (List.length lines >= 100);
  let expected = List.map direct_response lines in
  List.iter
    (fun domains ->
       let cache = Cache.create ~capacity:16 () in
       let outcomes = Batch.run ~domains ~cache (Array.of_list lines) in
       let got =
         Array.to_list outcomes
         |> List.map (fun (o : Batch.outcome) ->
             Protocol.response_to_string ~id:o.Batch.envelope.Protocol.id
               o.Batch.result)
       in
       List.iteri
         (fun i (e, g) ->
            Alcotest.(check string)
              (Printf.sprintf "domains=%d line %d" domains i)
              e g)
         (List.combine expected got))
    [ 1; 4 ]

let test_batch_stats_payload () =
  let cache = Cache.create ~capacity:4 () in
  let payload = Json.Obj [ ("requests", Json.Int 42) ] in
  let forced = ref 0 in
  let snapshot () =
    incr forced;
    payload
  in
  (* A batch without a stats op never pays for the snapshot. *)
  let _ =
    Batch.run ~domains:1 ~stats_payload:snapshot ~cache
      [| {|{"id":0,"op":"advise","c":1,"u":100,"p":1}|} |]
  in
  Alcotest.(check int) "no stats op: snapshot not computed" 0 !forced;
  let out =
    Batch.run ~domains:1 ~stats_payload:snapshot ~cache
      [| {|{"id":1,"op":"stats"}|} |]
  in
  Alcotest.(check int) "stats op: snapshot computed once" 1 !forced;
  match out.(0).Batch.result with
  | Ok p -> Alcotest.(check bool) "snapshot served" true (Json.equal p payload)
  | Error e -> Alcotest.fail (Cyclesteal.Error.to_string e)

(* --- Server end to end ------------------------------------------------------ *)

let with_temp_file content f =
  let path = Filename.temp_file "cschedd_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let oc = open_out path in
       output_string oc content;
       close_out oc;
       f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
       let rec go acc =
         match input_line ic with
         | line -> go (line :: acc)
         | exception End_of_file -> List.rev acc
       in
       go [])

(* Serve [lines] over plain file descriptors.  A caller-provided
   [router] is used as-is (and stays alive for inspection afterwards —
   the caller shuts it down); otherwise a fresh one with [shards]
   shards is created and shut down before returning.  [resp_cache]
   plugs the serialized-response tier into the server and wires its
   dp invalidation into the (owned) router's [on_grow] hook, as
   cschedd does. *)
let serve_lines ?batch_size ?wire ?(shards = 1) ?router ?resp_cache lines =
  let input = String.concat "\n" lines ^ "\n" in
  with_temp_file input (fun in_path ->
      let out_path = Filename.temp_file "cschedd_test" ".out" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove out_path with Sys_error _ -> ())
        (fun () ->
           let owned = router = None in
           let on_grow =
             Option.map (fun rc c -> Resp_cache.invalidate rc ~c) resp_cache
           in
           let router =
             match router with
             | Some r -> r
             | None -> Router.create ~shards ~domains:2 ?on_grow ~capacity:16 ()
           in
           Fun.protect
             ~finally:(fun () -> if owned then Router.shutdown router)
             (fun () ->
                let server =
                  Server.create ?batch_size ?wire ?resp_cache ~router ()
                in
                let in_fd = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
                let out_fd =
                  Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
                in
                Fun.protect
                  ~finally:(fun () ->
                    Unix.close in_fd;
                    Unix.close out_fd)
                  (fun () -> Server.serve_fd server in_fd out_fd);
                (read_lines out_path, Server.stats server, server))))

let test_server_end_to_end () =
  let lines = mixed_request_lines () in
  let expected = List.map direct_response lines in
  let got, stats, _server = serve_lines ~batch_size:32 lines in
  Alcotest.(check int) "one response per request" (List.length lines)
    (List.length got);
  List.iteri
    (fun i (e, g) ->
       Alcotest.(check string) (Printf.sprintf "line %d byte-identical" i) e g)
    (List.combine expected got);
  Alcotest.(check int) "requests counted" (List.length lines)
    (Stats.requests stats);
  Alcotest.(check int) "bytes served counted"
    (List.fold_left (fun acc l -> acc + String.length l + 1) 0 got)
    (Stats.bytes_served stats)

let test_server_stats_request () =
  let lines =
    [
      {|{"id":1,"op":"advise","c":1,"u":100,"p":1}|};
      {|{"id":2,"op":"stats"}|};
    ]
  in
  let got, _, _ = serve_lines ~batch_size:1 lines in
  match got with
  | [ _first; second ] ->
    Alcotest.(check bool) "stats ok" true (contains ~sub:{|"ok":true|} second);
    (* Batch size 1: the snapshot for request 2 has request 1 folded in. *)
    Alcotest.(check bool) "previous request counted" true
      (contains ~sub:{|"requests":1|} second);
    Alcotest.(check bool) "advise tallied" true
      (contains ~sub:{|"advise":1|} second)
  | other ->
    Alcotest.fail (Printf.sprintf "expected 2 responses, got %d" (List.length other))

let test_server_stats_reset () =
  let lines =
    [
      {|{"id":1,"op":"advise","c":1,"u":100,"p":1}|};
      {|{"id":2,"op":"stats","reset":true}|};
      {|{"id":3,"op":"stats"}|};
    ]
  in
  let got, _, _ = serve_lines ~batch_size:1 lines in
  match got with
  | [ _first; second; third ] ->
    (* The resetting request is itself served the pre-reset snapshot... *)
    Alcotest.(check bool) "pre-reset snapshot counts the advise" true
      (contains ~sub:{|"requests":1|} second);
    (* ...and the reset lands once its batch completes, so the next
       stats request sees zeroed counters. *)
    Alcotest.(check bool) "post-reset counters are zero" true
      (contains ~sub:{|"requests":0|} third)
  | other ->
    Alcotest.fail (Printf.sprintf "expected 3 responses, got %d" (List.length other))

let test_server_survives_malformed_flood () =
  let lines =
    List.init 50 (fun i ->
        if i mod 2 = 0 then Printf.sprintf "junk line %d" i
        else {|{"op":"advise","c":1,"u":100,"p":1}|})
  in
  let got, stats, _ = serve_lines lines in
  Alcotest.(check int) "all answered" 50 (List.length got);
  Alcotest.(check int) "requests counted" 50 (Stats.requests stats);
  List.iteri
    (fun i line ->
       let want_ok = i mod 2 = 1 in
       Alcotest.(check bool)
         (Printf.sprintf "line %d ok=%b" i want_ok)
         want_ok
         (contains ~sub:{|"ok":true|} line))
    got

let test_server_unterminated_final_line () =
  (* A final request without a trailing newline must still be answered. *)
  with_temp_file {|{"id":9,"op":"advise","c":1,"u":100,"p":1}|} (fun in_path ->
      let out_path = Filename.temp_file "cschedd_test" ".out" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove out_path with Sys_error _ -> ())
        (fun () ->
           let router = Router.create ~domains:1 ~capacity:4 () in
           let server = Server.create ~router () in
           let in_fd = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
           let out_fd =
             Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
           in
           Fun.protect
             ~finally:(fun () ->
               Unix.close in_fd;
               Unix.close out_fd;
               Router.shutdown router)
             (fun () -> Server.serve_fd server in_fd out_fd);
           match read_lines out_path with
           | [ line ] ->
             Alcotest.(check bool) "answered" true
               (contains ~sub:{|"id":9,"ok":true|} line)
           | other ->
             Alcotest.fail
               (Printf.sprintf "expected 1 response, got %d" (List.length other))))

let test_server_socket () =
  let dir = Filename.temp_file "cschedd_sock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let router = Router.create ~domains:1 ~capacity:4 () in
  let server = Server.create ~router () in
  let serving = Domain.spawn (fun () -> Server.serve_socket server ~path) in
  (* Wait for the socket to appear, connect, query, read, shut down. *)
  let rec wait tries =
    if tries = 0 then Alcotest.fail "socket never appeared"
    else if Sys.file_exists path then ()
    else begin
      Unix.sleepf 0.02;
      wait (tries - 1)
    end
  in
  wait 250;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  let line = {|{"id":5,"op":"advise","c":1,"u":100,"p":1}|} in
  let payload = line ^ "\n" in
  ignore (Unix.write_substring sock payload 0 (String.length payload));
  let buf = Bytes.create 4096 in
  let n = Unix.read sock buf 0 4096 in
  let response = Bytes.sub_string buf 0 n in
  Alcotest.(check string) "socket response matches direct"
    (direct_response line ^ "\n")
    response;
  Alcotest.(check bool) "response ok" true (contains ~sub:{|"ok":true|} response);
  Server.request_stop server;
  Unix.close sock;
  (* Unblock the accept loop with one last throwaway connection. *)
  (try
     let poke = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     Unix.connect poke (Unix.ADDR_UNIX path);
     Unix.close poke
   with Unix.Unix_error _ -> ());
  Domain.join serving;
  Router.shutdown router;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path);
  Unix.rmdir dir

(* The copying wire mode is the serving bench's baseline; its output
   must match the lean default byte for byte. *)
let test_server_copying_wire () =
  let lines = mixed_request_lines () in
  let expected = List.map direct_response lines in
  let got, _, _ = serve_lines ~batch_size:32 ~wire:Server.Copying lines in
  Alcotest.(check int) "one response per request" (List.length lines)
    (List.length got);
  List.iteri
    (fun i (e, g) ->
       Alcotest.(check string)
         (Printf.sprintf "copying line %d byte-identical" i)
         e g)
    (List.combine expected got)

(* A request line longer than the 64 KiB read buffer must yield exactly
   one error response — never a response per 64 KiB fragment, and never
   the oversized request's id — and the next line must parse cleanly. *)
let test_server_overlong_line () =
  let pad = String.make 70_000 'x' in
  let overlong =
    {|{"id":666,"op":"advise","c":1,"u":100,"p":1,"pad":"|} ^ pad ^ {|"}|}
  in
  let follow = {|{"id":7,"op":"advise","c":1,"u":100,"p":1}|} in
  let got, stats, _ = serve_lines [ overlong; follow ] in
  match got with
  | [ first; second ] ->
    Alcotest.(check bool) "overlong rejected" true
      (contains ~sub:{|"ok":false|} first);
    Alcotest.(check bool) "error names the limit" true
      (contains ~sub:"exceeds" first);
    Alcotest.(check bool) "overlong id never surfaces" false
      (contains ~sub:"666" (first ^ second));
    Alcotest.(check string) "follow-up line parses normally"
      (direct_response follow) second;
    Alcotest.(check int) "both accounted" 2 (Stats.requests stats)
  | other ->
    Alcotest.fail
      (Printf.sprintf "expected 2 responses, got %d" (List.length other))

(* A ping-pong socket client: write one request line, read until its
   response line arrives, repeat; returns everything it read. *)
(* --- Serialized-response cache ---------------------------------------------- *)

let test_resp_cache_unit () =
  let rc = Resp_cache.create ~capacity:2 in
  Alcotest.(check bool) "miss on empty" true (Resp_cache.find rc "a" = None);
  Resp_cache.store rc ~line:"a" ~op:"advise" ~reply:"ra" ();
  Resp_cache.store rc ~line:"b" ~op:"dp" ~dp_c:7 ~reply:"rb" ();
  (match Resp_cache.find rc "a" with
   | Some (reply, op) ->
     Alcotest.(check string) "stored bytes come back verbatim" "ra" reply;
     Alcotest.(check string) "op name stored" "advise" op
   | None -> Alcotest.fail "expected a hit on a");
  (* "a" was just served, so "b" is the LRU victim for the third entry. *)
  Resp_cache.store rc ~line:"c" ~op:"dp" ~dp_c:9 ~reply:"rc" ();
  Alcotest.(check bool) "LRU entry evicted" true (Resp_cache.find rc "b" = None);
  Alcotest.(check bool) "touched entry survived" true
    (Resp_cache.find rc "a" <> None);
  (* Duplicate store is a no-op (first writer wins). *)
  Resp_cache.store rc ~line:"a" ~op:"advise" ~reply:"other" ();
  (match Resp_cache.find rc "a" with
   | Some (reply, _) -> Alcotest.(check string) "first writer wins" "ra" reply
   | None -> Alcotest.fail "expected a hit on a");
  (* Invalidation drops exactly the dp entries backed by table c. *)
  Resp_cache.invalidate rc ~c:9;
  Alcotest.(check bool) "dp reply for c=9 dropped" true
    (Resp_cache.find rc "c" = None);
  Alcotest.(check bool) "unrelated entry kept" true
    (Resp_cache.find rc "a" <> None);
  let s = Resp_cache.stats rc in
  Alcotest.(check int) "hits" 4 s.Resp_cache.hits;
  Alcotest.(check int) "misses" 3 s.Resp_cache.misses;
  Alcotest.(check int) "insertions" 3 s.Resp_cache.insertions;
  Alcotest.(check int) "evictions" 1 s.Resp_cache.evictions;
  Alcotest.(check int) "invalidations" 1 s.Resp_cache.invalidations;
  Alcotest.(check int) "entries" 1 s.Resp_cache.entries;
  Alcotest.(check bool) "bytes accounted" true (s.Resp_cache.bytes > 0);
  Resp_cache.reset_counters rc;
  let z = Resp_cache.stats rc in
  Alcotest.(check int) "reset zeroes hits" 0 z.Resp_cache.hits;
  Alcotest.(check int) "reset keeps entries" 1 z.Resp_cache.entries

(* End to end through the server: a duplicate line is served from
   stored bytes, a dp growth invalidates the stale entry, and every
   reply stays byte-identical to the no-cache direct baseline. *)
let test_resp_cache_invalidation_on_grow () =
  let rc = Resp_cache.create ~capacity:8 in
  let dup = {|{"id":1,"op":"dp","c_ticks":9,"l":300,"p":1}|} in
  let grow = {|{"id":2,"op":"dp","c_ticks":9,"l":4000,"p":5}|} in
  let other = {|{"id":3,"op":"dp","c_ticks":4,"l":300,"p":1}|} in
  let lines = [ dup; other; dup; grow; dup ] in
  let got, _stats, _server = serve_lines ~batch_size:1 ~resp_cache:rc lines in
  let expected = List.map direct_response lines in
  Alcotest.(check int) "every line answered" (List.length expected)
    (List.length got);
  List.iteri
    (fun i (e, g) ->
       Alcotest.(check string) (Printf.sprintf "line %d byte-identical" i) e g)
    (List.combine expected got);
  let s = Resp_cache.stats rc in
  Alcotest.(check int) "one hit: the pre-grow duplicate" 1 s.Resp_cache.hits;
  Alcotest.(check int) "post-grow duplicate re-misses" 4 s.Resp_cache.misses;
  Alcotest.(check int) "re-stored after invalidation" 4 s.Resp_cache.insertions;
  Alcotest.(check int) "growth dropped the stale dp reply" 1
    s.Resp_cache.invalidations;
  Alcotest.(check int) "entries resident" 3 s.Resp_cache.entries

let run_client path lines =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect sock (Unix.ADDR_UNIX path);
       let buf = Buffer.create 4096 in
       let chunk = Bytes.create 4096 in
       let newlines = ref 0 in
       let want = ref 0 in
       List.iter
         (fun line ->
            let payload = line ^ "\n" in
            let rec send off =
              if off < String.length payload then
                match
                  Unix.write_substring sock payload off
                    (String.length payload - off)
                with
                | n -> send (off + n)
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
            in
            send 0;
            incr want;
            while !newlines < !want do
              match Unix.read sock chunk 0 (Bytes.length chunk) with
              | 0 -> failwith "server closed the connection early"
              | n ->
                for i = 0 to n - 1 do
                  if Bytes.get chunk i = '\n' then incr newlines
                done;
                Buffer.add_subbytes buf chunk 0 n
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done)
         lines;
       Buffer.contents buf)

let with_socket_server ?(max_conns = 1) ?(capacity = 16) ?(shards = 1) f =
  let dir = Filename.temp_file "cschedd_sock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let router = Router.create ~shards ~domains:1 ~capacity () in
  let server = Server.create ~max_conns ~router () in
  let serving = Domain.spawn (fun () -> Server.serve_socket server ~path) in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "socket never appeared"
    else if Sys.file_exists path then ()
    else begin
      Unix.sleepf 0.02;
      wait (tries - 1)
    end
  in
  wait 250;
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      (* Unblock the accept loop with one last throwaway connection. *)
      (try
         let poke = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         Unix.connect poke (Unix.ADDR_UNIX path);
         Unix.close poke
       with Unix.Unix_error _ -> ());
      Domain.join serving;
      Router.shutdown router;
      (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ()))
    (fun () -> f server path)

(* Deterministic per-client request scripts with disjoint id spaces. *)
let client_script i =
  List.init 40 (fun k ->
      let id = (1000 * (i + 1)) + k in
      match k mod 3 with
      | 0 ->
        Printf.sprintf {|{"id":%d,"op":"advise","c":%d,"u":%d,"p":%d}|} id
          ((k mod 4) + 1)
          (300 + (17 * k))
          (k mod 3)
      | 1 ->
        Printf.sprintf {|{"id":%d,"op":"dp","c_ticks":%d,"l":%d,"p":%d}|} id
          (4 + (k mod 3))
          (150 + (11 * k))
          (k mod 3)
      | _ ->
        Printf.sprintf
          {|{"id":%d,"op":"evaluate","c":1,"u":%d,"p":%d,"policy":"nonadaptive"}|}
          id
          (40 + (7 * k))
          (k mod 2))

(* Interleaved clients against one concurrent server: every client must
   read exactly the bytes a serial run would have sent it. *)
let test_server_concurrent_clients () =
  let nclients = 3 in
  with_socket_server ~max_conns:nclients (fun _server path ->
      let clients =
        List.init nclients (fun i ->
            Domain.spawn (fun () -> run_client path (client_script i)))
      in
      let got = List.map Domain.join clients in
      List.iteri
        (fun i out ->
           let expected =
             String.concat ""
               (List.map
                  (fun l -> direct_response l ^ "\n")
                  (client_script i))
           in
           Alcotest.(check string)
             (Printf.sprintf "client %d byte-identical to serial" i)
             expected out)
        got)

(* Like [run_client], but send the whole script before reading anything:
   the server drains it in large batches, so the batch engine actually
   sees duplicate-heavy batches to group. *)
let run_client_burst path lines =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect sock (Unix.ADDR_UNIX path);
       let payload = String.concat "\n" lines ^ "\n" in
       let rec send off =
         if off < String.length payload then
           match
             Unix.write_substring sock payload off (String.length payload - off)
           with
           | n -> send (off + n)
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
       in
       send 0;
       let want = List.length lines in
       let buf = Buffer.create 4096 in
       let chunk = Bytes.create 4096 in
       let newlines = ref 0 in
       while !newlines < want do
         match Unix.read sock chunk 0 (Bytes.length chunk) with
         | 0 -> failwith "server closed the connection early"
         | n ->
           for i = 0 to n - 1 do
             if Bytes.get chunk i = '\n' then incr newlines
           done;
           Buffer.add_subbytes buf chunk 0 n
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       done;
       Buffer.contents buf)

(* Scripts dominated by a handful of cache identities, so batch
   grouping folds most of each batch into a few groups. *)
let dup_heavy_script i =
  List.init 48 (fun k ->
      let id = (1000 * (i + 1)) + k in
      match k mod 4 with
      | 0 | 1 ->
        Printf.sprintf {|{"id":%d,"op":"dp","c_ticks":6,"l":%d,"p":%d}|} id
          (200 + (13 * (k mod 5)))
          (k mod 3)
      | 2 ->
        Printf.sprintf
          {|{"id":%d,"op":"evaluate","c":1,"u":90,"p":%d,"policy":"adaptive"}|}
          id (k mod 2)
      | _ ->
        Printf.sprintf {|{"id":%d,"op":"advise","c":2,"u":%d,"p":1}|} id
          (400 + k))

(* Interleaved dup-heavy clients, whole scripts sent as one burst:
   grouping reorders evaluation inside a batch, but outcomes must
   scatter back in request order, so every client reads exactly the
   bytes a serial ungrouped server would have sent it. *)
let test_grouping_preserves_order () =
  let nclients = 3 in
  with_socket_server ~max_conns:nclients ~shards:2 (fun _server path ->
      let clients =
        List.init nclients (fun i ->
            Domain.spawn (fun () -> run_client_burst path (dup_heavy_script i)))
      in
      let got = List.map Domain.join clients in
      List.iteri
        (fun i out ->
           let expected =
             String.concat ""
               (List.map
                  (fun l -> direct_response l ^ "\n")
                  (dup_heavy_script i))
           in
           Alcotest.(check string)
             (Printf.sprintf "client %d order and bytes preserved" i)
             expected out)
        got)

(* A client that floods requests and vanishes without reading must cost
   an io_errors tick, not the daemon: a later client is still served. *)
let test_server_client_disconnect () =
  with_socket_server ~max_conns:2 ~capacity:8 (fun server path ->
      let provoke attempt =
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.connect sock (Unix.ADDR_UNIX path);
           (* Distinct params each attempt keep the solves cold and
              slow, so the responses land after we are gone. *)
           let line =
             Printf.sprintf {|{"id":1,"op":"advise","c":%d,"u":%d,"p":2}|}
               ((attempt mod 5) + 1)
               (40_000 + (attempt * 97))
             ^ "\n"
           in
           for _ = 1 to 100 do
             ignore (Unix.write_substring sock line 0 (String.length line))
           done
         with Unix.Unix_error _ -> ());
        try Unix.close sock with Unix.Unix_error _ -> ()
      in
      let io_errors () = Stats.io_errors (Server.stats server) in
      let rec attempt tries =
        if tries = 0 || io_errors () > 0 then ()
        else begin
          provoke (10 - tries);
          let rec poll k =
            if k = 0 || io_errors () > 0 then ()
            else begin
              Unix.sleepf 0.02;
              poll (k - 1)
            end
          in
          poll 50;
          attempt (tries - 1)
        end
      in
      attempt 10;
      Alcotest.(check bool) "disconnect counted as io error" true
        (io_errors () > 0);
      let line = {|{"id":42,"op":"advise","c":1,"u":250,"p":1}|} in
      Alcotest.(check string) "daemon still serves after disconnects"
        (direct_response line ^ "\n")
        (run_client path [ line ]))

(* --- Router: placement ------------------------------------------------------ *)

(* Placement is a pure function: in range, and the same on every call
   (rendezvous hashing uses no per-process state). *)
let prop_placement_range =
  QCheck.Test.make ~name:"Router.place lands in range, deterministically"
    ~count:500
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 64)) (int_range 1 16))
    (fun (key, shards) ->
       let k = Router.place ~shards key in
       k >= 0 && k < shards && Router.place ~shards key = k)

(* Rendezvous stability, sharply: a key moves from a K-shard placement
   to a (K+1)-shard one only if the new shard out-scores its old one,
   so every mover lands on shard K, and about 1/(K+1) of keys move. *)
let test_placement_remap () =
  let keys =
    List.init 2000 (fun i ->
        Printf.sprintf "cu:%h:%h:advise" (float_of_int (i + 1)) (3.5 *. float_of_int i))
  in
  let n = float_of_int (List.length keys) in
  List.iter
    (fun shards ->
       let moved =
         List.filter
           (fun key ->
              let before = Router.place ~shards key in
              let after = Router.place ~shards:(shards + 1) key in
              if after <> before then begin
                Alcotest.(check int)
                  (Printf.sprintf "K=%d: mover lands on the new shard" shards)
                  shards after;
                true
              end
              else false)
           keys
       in
       let frac = float_of_int (List.length moved) /. n in
       let expected = 1. /. float_of_int (shards + 1) in
       Alcotest.(check bool)
         (Printf.sprintf "K=%d: %.3f of keys moved (expected ~%.3f)" shards
            frac expected)
         true
         (frac > 0.3 *. expected && frac < 2.5 *. expected))
    [ 1; 2; 3; 4; 7 ]

(* Requests that share cached state share a canonical placement key —
   e.g. evaluate over the same (c, u, policy) at different p reuses one
   resident solver — so they must land on the same shard. *)
let test_placement_equal_canonical_keys () =
  let key p =
    let line =
      Printf.sprintf
        {|{"op":"evaluate","c":1,"u":120,"p":%d,"policy":"adaptive"}|} p
    in
    match (Protocol.parse_line line).Protocol.request with
    | Ok req -> Protocol.shard_key req
    | Error e -> Alcotest.fail (Cyclesteal.Error.to_string e)
  in
  Alcotest.(check bool) "p is not part of the placement key" true
    (key 1 = key 3 && key 1 <> None);
  (* And the dp placement key is the one bank slicing uses. *)
  let dp_key =
    match
      (Protocol.parse_line {|{"op":"dp","c_ticks":7,"l":200,"p":1}|})
        .Protocol.request
    with
    | Ok req -> Protocol.shard_key req
    | Error e -> Alcotest.fail (Cyclesteal.Error.to_string e)
  in
  Alcotest.(check bool) "dp key matches the bank-slicing key" true
    (dp_key = Some (Protocol.dp_shard_key ~c_ticks:7))

(* --- Router: sharded serving ------------------------------------------------ *)

(* The whole mixed corpus through a 3-shard router must serve bytes
   identical to direct library calls — routing must be invisible. *)
let test_sharded_byte_identity () =
  let lines = mixed_request_lines () in
  let expected = List.map direct_response lines in
  let got, stats, _server = serve_lines ~batch_size:32 ~shards:3 lines in
  Alcotest.(check int) "one response per request" (List.length lines)
    (List.length got);
  List.iteri
    (fun i (e, g) ->
       Alcotest.(check string)
         (Printf.sprintf "K=3 line %d byte-identical" i)
         e g)
    (List.combine expected got);
  Alcotest.(check int) "requests counted" (List.length lines)
    (Stats.requests stats)

(* The stats payload of a K>1 daemon carries per-shard sections, and
   every routed request is accounted by exactly one shard. *)
let test_sharded_stats_sections () =
  let lines =
    List.init 12 (fun i ->
        Printf.sprintf {|{"id":%d,"op":"advise","c":%d,"u":%d,"p":1}|} i
          ((i mod 4) + 1)
          (200 + (31 * i)))
    @ [ {|{"id":99,"op":"stats"}|} ]
  in
  let got, _, _ = serve_lines ~batch_size:64 ~shards:2 lines in
  let last = List.nth got (List.length got - 1) in
  Alcotest.(check bool) "payload has shard sections" true
    (contains ~sub:{|"shards":[|} last && contains ~sub:{|"shard":1|} last)

(* --- Router: stealing -------------------------------------------------- *)

let outcome_strings outcomes =
  Array.to_list outcomes
  |> List.map (fun (o : Batch.outcome) ->
      Protocol.response_to_string ~id:o.Batch.envelope.Protocol.id
        o.Batch.result)

(* Stealing must be invisible in the bytes: interleaved clients running
   the whole mixed corpus against a steal-enabled sharded router get
   responses identical to direct library calls (and therefore to a
   no-steal router, which the sharded byte-identity test above pins to
   the same reference). *)
let test_steal_byte_identity_interleaved () =
  let router = Router.create ~shards:3 ~domains:2 ~steal:true ~capacity:16 () in
  Fun.protect
    ~finally:(fun () -> Router.shutdown router)
    (fun () ->
       let lines = Array.of_list (mixed_request_lines ()) in
       let clients =
         List.init 3 (fun _ ->
             Domain.spawn (fun () -> outcome_strings (Router.run router lines)))
       in
       let expected = List.map direct_response (Array.to_list lines) in
       List.iteri
         (fun c got ->
            List.iteri
              (fun i (e, g) ->
                 Alcotest.(check string)
                   (Printf.sprintf "client %d line %d byte-identical" c i)
                   e g)
              (List.combine expected got))
         (List.map Domain.join clients))

(* Idle-shard stealing actually fires: pin the hot shard down with one
   long cold dp solve, then feed it stealable pure-compute requests —
   the idle sibling is kicked on each submit and answers them while the
   owner is stuck, so the steal counter must move and the responses
   must still match the direct reference. *)
let test_steal_takes_from_hot_shard () =
  let shards = 2 in
  let shard_of line =
    match (Protocol.parse_line line).Protocol.request with
    | Ok req -> (
        match Protocol.shard_key req with
        | Some key -> Router.place ~shards key
        | None -> -1)
    | Error e -> Alcotest.fail (Cyclesteal.Error.to_string e)
  in
  let blocker = {|{"id":0,"op":"dp","c_ticks":5,"l":24000,"p":12}|} in
  let hot = shard_of blocker in
  (* Pure-compute advise requests placed on the same (hot) shard. *)
  let stealable =
    List.init 400 (fun i ->
        Printf.sprintf {|{"id":%d,"op":"advise","c":%d,"u":%d,"p":1}|} (i + 1)
          ((i mod 6) + 1)
          (150 + (17 * i)))
    |> List.filter (fun l -> shard_of l = hot)
    |> fun ls -> List.filteri (fun i _ -> i < 8) ls
  in
  Alcotest.(check bool) "found stealable lines on the hot shard" true
    (List.length stealable = 8);
  let router =
    Router.create ~shards ~domains:2 ~steal:true ~capacity:16 ()
  in
  Fun.protect
    ~finally:(fun () -> Router.shutdown router)
    (fun () ->
       let solver = Domain.spawn (fun () -> Router.run router [| blocker |]) in
       (* Let the hot worker pick the blocker up before queueing work
          behind it. *)
       Unix.sleepf 0.02;
       List.iter
         (fun line ->
            match outcome_strings (Router.run router [| line |]) with
            | [ got ] ->
              Alcotest.(check string) "stolen response byte-identical"
                (direct_response line) got
            | _ -> Alcotest.fail "expected one response")
         stealable;
       (match outcome_strings (Domain.join solver) with
        | [ got ] ->
          Alcotest.(check string) "blocker response byte-identical"
            (direct_response blocker) got
        | _ -> Alcotest.fail "expected one blocker response");
       Alcotest.(check bool) "sibling stole from the hot shard" true
         (Router.steals router >= 1))

(* --- Router: shard failure -------------------------------------------------- *)

(* Kill a shard worker mid-batch: the in-flight requests answer with a
   structured unavailable error (the daemon survives), the same request
   succeeds on the restarted shard, and stats reports the restart. *)
let test_shard_worker_killed () =
  let line = {|{"id":1,"op":"advise","c":2,"u":300,"p":1}|} in
  let shards = 2 in
  let shard =
    match (Protocol.parse_line line).Protocol.request with
    | Ok req -> Router.place ~shards (Option.get (Protocol.shard_key req))
    | Error e -> Alcotest.fail (Cyclesteal.Error.to_string e)
  in
  let router = Router.create ~shards ~domains:1 ~capacity:8 () in
  Fun.protect
    ~finally:(fun () -> Router.shutdown router)
    (fun () ->
       Router.inject_failure router ~shard Router.Die;
       let got, _, _ =
         serve_lines ~batch_size:1 ~router
           [ line; line; {|{"id":3,"op":"stats"}|} ]
       in
       match got with
       | [ first; second; stats_line ] ->
         Alcotest.(check bool) "killed batch answers an error" true
           (contains ~sub:{|"ok":false|} first);
         Alcotest.(check bool) "error is structured unavailable" true
           (contains ~sub:{|"unavailable"|} first
            && contains ~sub:"restarted" first);
         Alcotest.(check string) "retry succeeds on the restarted shard"
           (direct_response line) second;
         Alcotest.(check bool) "stats reports the restart" true
           (contains ~sub:{|"restarts":1|} stats_line);
         Alcotest.(check int) "router counts one restart" 1
           (Router.restarts router)
       | other ->
         Alcotest.fail
           (Printf.sprintf "expected 3 responses, got %d" (List.length other)))

(* A wedged worker is caught by the watchdog: the stuck batch answers
   unavailable after ~hang_timeout, and the replacement worker serves
   the next request. *)
let test_shard_worker_wedged () =
  let line = {|{"id":1,"op":"advise","c":1,"u":250,"p":1}|} in
  let router =
    Router.create ~shards:1 ~domains:1 ~hang_timeout:0.2 ~capacity:8 ()
  in
  Fun.protect
    ~finally:(fun () -> Router.shutdown router)
    (fun () ->
       Router.inject_failure router ~shard:0 (Router.Wedge 1.5);
       let t0 = Unix.gettimeofday () in
       let got, _, _ = serve_lines ~batch_size:1 ~router [ line; line ] in
       let dt = Unix.gettimeofday () -. t0 in
       match got with
       | [ first; second ] ->
         Alcotest.(check bool) "wedged batch answers an error" true
           (contains ~sub:{|"ok":false|} first
            && contains ~sub:"unresponsive" first);
         Alcotest.(check string) "next request serves from the replacement"
           (direct_response line) second;
         Alcotest.(check bool)
           (Printf.sprintf
              "watchdog fired before the wedge cleared (%.2f s)" dt)
           true (dt < 1.4);
         Alcotest.(check int) "one restart recorded" 1 (Router.restarts router)
       | other ->
         Alcotest.fail
           (Printf.sprintf "expected 2 responses, got %d" (List.length other)))

(* --- Stats: counter reset ---------------------------------------------------- *)

(* reset_counters must zero the latency histogram along with the scalar
   counters: stale buckets would keep reporting percentiles computed
   from requests the counters no longer admit to. *)
let test_stats_reset_histogram () =
  let s = Stats.create () in
  List.iter
    (fun latency ->
       Stats.add s { Stats.op = "advise"; ok = true; latency; bytes = 10 })
    [ 1e-5; 1e-4; 1e-3 ];
  Alcotest.(check bool) "percentiles present before reset" true
    (Stats.percentiles s <> None);
  Stats.reset_counters s;
  Alcotest.(check int) "requests zeroed" 0 (Stats.requests s);
  Alcotest.(check int) "bytes zeroed" 0 (Stats.bytes_served s);
  Alcotest.(check bool) "histogram zeroed: no stale percentiles" true
    (Stats.percentiles s = None)

(* --- Summary rendering ------------------------------------------------------ *)

let test_summary_renders () =
  let _, _, server = serve_lines [ {|{"op":"advise","c":1,"u":100,"p":1}|} ] in
  let s = Server.summary server in
  Alcotest.(check bool) "has title" true (contains ~sub:"cschedd session summary" s);
  Alcotest.(check bool) "has request count" true (contains ~sub:"requests" s)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "print" `Quick test_json_print;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "float round-trip" `Quick test_json_float_round_trip;
          Alcotest.test_case "float repr edge cases" `Quick
            test_json_float_repr_edges;
        ] );
      ( "json props",
        qc [ prop_json_round_trip; prop_json_ref_printer; prop_float_repr_matches_ref ]
      );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_protocol_round_trip;
          Alcotest.test_case "parse errors" `Quick test_protocol_errors;
          Alcotest.test_case "handle errors" `Quick test_protocol_handle_errors;
          Alcotest.test_case "strategies listing" `Quick test_protocol_strategies;
        ] );
      ( "cache",
        [
          Alcotest.test_case "canonicalization" `Quick test_cache_canonicalization;
          Alcotest.test_case "sharing + correctness" `Quick
            test_cache_sharing_and_correctness;
          Alcotest.test_case "in-place growth" `Quick test_cache_growth;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "preload groups solves" `Quick
            test_cache_preload_groups_solves;
          Alcotest.test_case "single-flight: duplicate cold key" `Quick
            test_cache_single_flight_dup_cold;
          Alcotest.test_case "single-flight: concurrent preloads" `Quick
            test_cache_preload_coalesces;
          Alcotest.test_case "single-flight: solver herd" `Quick
            test_cache_solver_single_flight;
          Alcotest.test_case "kernel counters surfaced and reset" `Quick
            test_cache_kernel_counters;
          Alcotest.test_case "resident game solver" `Quick
            test_cache_resident_solver;
        ] );
      ( "batch",
        [
          Alcotest.test_case "mixed batch matches direct calls" `Slow
            test_batch_matches_direct;
          Alcotest.test_case "stats snapshot" `Quick test_batch_stats_payload;
        ] );
      ( "router",
        qc [ prop_placement_range ]
        @ [
            Alcotest.test_case "rendezvous remap K -> K+1" `Quick
              test_placement_remap;
            Alcotest.test_case "equal canonical keys share a shard" `Quick
              test_placement_equal_canonical_keys;
            Alcotest.test_case "K=3 byte-identical to direct" `Slow
              test_sharded_byte_identity;
            Alcotest.test_case "per-shard stats sections" `Quick
              test_sharded_stats_sections;
            Alcotest.test_case "steal: interleaved byte-identity" `Slow
              test_steal_byte_identity_interleaved;
            Alcotest.test_case "steal: idle shard takes from hot" `Quick
              test_steal_takes_from_hot_shard;
            Alcotest.test_case "killed shard worker" `Quick
              test_shard_worker_killed;
            Alcotest.test_case "wedged shard worker" `Slow
              test_shard_worker_wedged;
          ] );
      ( "stats",
        [
          Alcotest.test_case "reset zeroes the latency histogram" `Quick
            test_stats_reset_histogram;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end, byte-identical" `Slow
            test_server_end_to_end;
          Alcotest.test_case "stats request" `Quick test_server_stats_request;
          Alcotest.test_case "stats reset" `Quick test_server_stats_reset;
          Alcotest.test_case "malformed flood" `Quick
            test_server_survives_malformed_flood;
          Alcotest.test_case "unterminated final line" `Quick
            test_server_unterminated_final_line;
          Alcotest.test_case "unix socket" `Quick test_server_socket;
          Alcotest.test_case "copying wire byte-identical" `Slow
            test_server_copying_wire;
          Alcotest.test_case "overlong line" `Quick test_server_overlong_line;
          Alcotest.test_case "concurrent clients" `Slow
            test_server_concurrent_clients;
          Alcotest.test_case "resp cache: LRU + invalidate" `Quick
            test_resp_cache_unit;
          Alcotest.test_case "resp cache: invalidated on growth" `Quick
            test_resp_cache_invalidation_on_grow;
          Alcotest.test_case "grouping preserves order" `Slow
            test_grouping_preserves_order;
          Alcotest.test_case "client disconnect" `Slow
            test_server_client_disconnect;
          Alcotest.test_case "summary" `Quick test_summary_renders;
        ] );
    ]
