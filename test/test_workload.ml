(* Tests for the workload substrate: distributions, task bags, period
   packing and interrupt traces. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let rng () = Csutil.Rng.create ~seed:2024

(* --- Distributions ------------------------------------------------------- *)

let test_distribution_validation () =
  (try
     ignore (Workload.Distribution.constant 0.);
     Alcotest.fail "constant 0 accepted"
   with Cyclesteal.Error.Error _ -> ());
  (try
     ignore (Workload.Distribution.uniform ~lo:2. ~hi:1.);
     Alcotest.fail "inverted uniform accepted"
   with Cyclesteal.Error.Error _ -> ());
  (try
     ignore (Workload.Distribution.pareto ~xm:1. ~alpha:0.);
     Alcotest.fail "alpha 0 accepted"
   with Cyclesteal.Error.Error _ -> ())

let test_constant_sampling () =
  let d = Workload.Distribution.constant 2.5 in
  let r = rng () in
  for _ = 1 to 10 do
    check_float "constant" 2.5 (Workload.Distribution.sample d r)
  done;
  check_float "mean" 2.5 (Workload.Distribution.mean d)

let test_uniform_sampling_bounds () =
  let d = Workload.Distribution.uniform ~lo:1. ~hi:3. in
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Workload.Distribution.sample d r in
    Alcotest.(check bool) "in range" true (x >= 1. && x < 3.)
  done;
  check_float "mean" 2. (Workload.Distribution.mean d)

let test_sample_means_near_analytic () =
  let r = rng () in
  let n = 20_000 in
  List.iter
    (fun d ->
       let acc = ref 0. in
       for _ = 1 to n do
         acc := !acc +. Workload.Distribution.sample d r
       done;
       let sample_mean = !acc /. float_of_int n in
       let expected = Workload.Distribution.mean d in
       Alcotest.(check bool)
         (Format.asprintf "%a: %g vs %g" Workload.Distribution.pp d sample_mean
            expected)
         true
         (Float.abs (sample_mean -. expected) /. expected < 0.1))
    [
      Workload.Distribution.uniform ~lo:1. ~hi:5.;
      Workload.Distribution.exponential ~mean:3.;
      Workload.Distribution.pareto ~xm:1. ~alpha:3.;
    ]

let test_pareto_infinite_mean () =
  let d = Workload.Distribution.pareto ~xm:1. ~alpha:0.9 in
  Alcotest.(check bool) "infinite" true
    (Workload.Distribution.mean d = Float.infinity)

let test_truncated_normal_floor () =
  let d = Workload.Distribution.truncated_normal ~mean:1. ~stddev:5. ~lo:0.5 in
  let r = rng () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above floor" true
      (Workload.Distribution.sample d r >= 0.5)
  done

(* --- Task bags ------------------------------------------------------------ *)

let test_bag_fifo_order () =
  let bag = Workload.Task.bag_of_sizes [ 1.; 2.; 3. ] in
  (match Workload.Task.pop bag with
   | Some t ->
     Alcotest.(check int) "first id" 0 (Workload.Task.id t);
     check_float "first size" 1. (Workload.Task.size t)
   | None -> Alcotest.fail "pop failed");
  (match Workload.Task.pop bag with
   | Some t -> check_float "second size" 2. (Workload.Task.size t)
   | None -> Alcotest.fail "pop failed")

let test_bag_accounting () =
  let bag = Workload.Task.bag_of_sizes [ 1.; 2.; 3. ] in
  check_float "remaining work" 6. (Workload.Task.remaining_work bag);
  Alcotest.(check int) "count" 3 (Workload.Task.remaining_count bag);
  ignore (Workload.Task.pop bag);
  check_float "after pop" 5. (Workload.Task.remaining_work bag);
  Alcotest.(check bool) "not empty" false (Workload.Task.is_empty bag)

let test_bag_push_front () =
  let bag = Workload.Task.bag_of_sizes [ 1.; 2. ] in
  let t1 = Option.get (Workload.Task.pop bag) in
  Workload.Task.push_front bag [ t1 ];
  (match Workload.Task.peek bag with
   | Some t -> Alcotest.(check int) "returned to front" (Workload.Task.id t1) (Workload.Task.id t)
   | None -> Alcotest.fail "peek failed");
  check_float "work restored" 3. (Workload.Task.remaining_work bag)

let test_generate () =
  let r = rng () in
  let bag =
    Workload.Task.generate ~rng:r ~dist:(Workload.Distribution.constant 2.) ~n:5
  in
  Alcotest.(check int) "count" 5 (Workload.Task.remaining_count bag);
  check_float "total" 10. (Workload.Task.remaining_work bag)

let test_generate_total () =
  let r = rng () in
  let bag =
    Workload.Task.generate_total ~rng:r
      ~dist:(Workload.Distribution.uniform ~lo:1. ~hi:2.) ~total:50.
  in
  Alcotest.(check bool) "at least the target" true
    (Workload.Task.remaining_work bag >= 50.);
  Alcotest.(check bool) "no overshoot beyond one task" true
    (Workload.Task.remaining_work bag < 52.)

(* --- Packing --------------------------------------------------------------- *)

let test_pack_greedy_fifo () =
  let bag = Workload.Task.bag_of_sizes [ 2.; 3.; 4.; 1. ] in
  let packed = Workload.Packing.pack bag ~budget:6. in
  (* Takes 2, 3 (sum 5); 4 does not fit; stops (FIFO, no skipping). *)
  Alcotest.(check int) "tasks taken" 2 (List.length packed.Workload.Packing.tasks);
  check_float "used" 5. packed.Workload.Packing.used;
  check_float "fragmentation" 1. (Workload.Packing.fragmentation packed);
  Alcotest.(check int) "bag keeps rest" 2 (Workload.Task.remaining_count bag)

let test_pack_zero_budget () =
  let bag = Workload.Task.bag_of_sizes [ 1. ] in
  let packed = Workload.Packing.pack bag ~budget:0. in
  Alcotest.(check int) "nothing packed" 0 (List.length packed.Workload.Packing.tasks);
  Alcotest.(check int) "bag untouched" 1 (Workload.Task.remaining_count bag)

let test_pack_exact_fit () =
  let bag = Workload.Task.bag_of_sizes [ 2.; 4. ] in
  let packed = Workload.Packing.pack bag ~budget:6. in
  Alcotest.(check int) "both" 2 (List.length packed.Workload.Packing.tasks);
  check_float "no fragmentation" 0. (Workload.Packing.fragmentation packed)

let test_unpack_restores () =
  let bag = Workload.Task.bag_of_sizes [ 2.; 3.; 4. ] in
  let packed = Workload.Packing.pack bag ~budget:5. in
  Workload.Packing.unpack bag packed;
  check_float "work restored" 9. (Workload.Task.remaining_work bag);
  (* Order restored too. *)
  match Workload.Task.peek bag with
  | Some t -> check_float "front is first task" 2. (Workload.Task.size t)
  | None -> Alcotest.fail "peek failed"

let test_pack_episode () =
  let params = Cyclesteal.Model.params ~c:1. in
  let bag = Workload.Task.bag_of_sizes (List.init 20 (fun _ -> 1.)) in
  let s = Cyclesteal.Schedule.of_list [ 4.; 3.; 2. ] in
  let packings = Workload.Packing.pack_episode params s bag in
  Alcotest.(check int) "one packing per period" 3 (List.length packings);
  let budgets = List.map (fun p -> p.Workload.Packing.budget) packings in
  Alcotest.(check (list (float 1e-9))) "budgets are t - c" [ 3.; 2.; 1. ] budgets;
  (* 6 unit tasks packed in total. *)
  Alcotest.(check int) "bag residue" 14 (Workload.Task.remaining_count bag)

(* --- Interrupt traces ------------------------------------------------------ *)

let test_trace_validation () =
  (try
     ignore (Workload.Interrupt_trace.of_times ~u:10. [ 11. ]);
     Alcotest.fail "time beyond lifespan accepted"
   with Cyclesteal.Error.Error _ -> ());
  (try
     ignore (Workload.Interrupt_trace.validate ~u:10. [ 3.; 3. ]);
     Alcotest.fail "duplicate accepted"
   with Cyclesteal.Error.Error _ -> ())

let test_poisson_trace_caps_at_p () =
  let r = rng () in
  for _ = 1 to 50 do
    let trace = Workload.Interrupt_trace.poisson ~rng:r ~u:100. ~rate:1. ~p:3 in
    Alcotest.(check bool) "capped" true (List.length trace <= 3);
    List.iter
      (fun t -> Alcotest.(check bool) "in range" true (t > 0. && t < 100.))
      trace
  done

let test_poisson_trace_strictly_increasing () =
  let r = rng () in
  let trace = Workload.Interrupt_trace.poisson ~rng:r ~u:1000. ~rate:0.1 ~p:20 in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "increasing" true (increasing trace)

let test_uniform_trace () =
  let r = rng () in
  let trace = Workload.Interrupt_trace.uniform ~rng:r ~u:50. ~a:5 in
  Alcotest.(check int) "exactly a" 5 (List.length trace)

let test_shifts () =
  let trace = Workload.Interrupt_trace.shifts ~u:100. ~fractions:[ 0.25; 0.75 ] in
  Alcotest.(check (list (float 1e-9))) "times" [ 25.; 75. ] trace;
  (try
     ignore (Workload.Interrupt_trace.shifts ~u:100. ~fractions:[ 1.5 ]);
     Alcotest.fail "fraction > 1 accepted"
   with Cyclesteal.Error.Error _ -> ())

(* --- QCheck ---------------------------------------------------------------- *)

let prop_pack_within_budget =
  QCheck.Test.make ~name:"packing never exceeds the budget" ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 20) (float_range 0.1 5.)) (float_range 0. 20.))
    (fun (sizes, budget) ->
      let bag = Workload.Task.bag_of_sizes sizes in
      let packed = Workload.Packing.pack bag ~budget in
      packed.Workload.Packing.used <= budget +. 1e-9)

let prop_pack_conserves_tasks =
  QCheck.Test.make ~name:"pack + bag residue conserve tasks" ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 20) (float_range 0.1 5.)) (float_range 0. 20.))
    (fun (sizes, budget) ->
      let bag = Workload.Task.bag_of_sizes sizes in
      let packed = Workload.Packing.pack bag ~budget in
      List.length packed.Workload.Packing.tasks + Workload.Task.remaining_count bag
      = List.length sizes)

let prop_unpack_roundtrip =
  QCheck.Test.make ~name:"unpack restores remaining work" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 20) (float_range 0.1 5.)) (float_range 0. 20.))
    (fun (sizes, budget) ->
      let bag = Workload.Task.bag_of_sizes sizes in
      let before = Workload.Task.remaining_work bag in
      let packed = Workload.Packing.pack bag ~budget in
      Workload.Packing.unpack bag packed;
      Csutil.Float_ext.approx_eq before (Workload.Task.remaining_work bag))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "distribution",
        [
          Alcotest.test_case "validation" `Quick test_distribution_validation;
          Alcotest.test_case "constant" `Quick test_constant_sampling;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_sampling_bounds;
          Alcotest.test_case "sample means" `Slow test_sample_means_near_analytic;
          Alcotest.test_case "pareto infinite mean" `Quick test_pareto_infinite_mean;
          Alcotest.test_case "truncated normal floor" `Quick
            test_truncated_normal_floor;
        ] );
      ( "task",
        [
          Alcotest.test_case "fifo order" `Quick test_bag_fifo_order;
          Alcotest.test_case "accounting" `Quick test_bag_accounting;
          Alcotest.test_case "push front" `Quick test_bag_push_front;
          Alcotest.test_case "generate n" `Quick test_generate;
          Alcotest.test_case "generate total" `Quick test_generate_total;
        ] );
      ( "packing",
        [
          Alcotest.test_case "greedy fifo" `Quick test_pack_greedy_fifo;
          Alcotest.test_case "zero budget" `Quick test_pack_zero_budget;
          Alcotest.test_case "exact fit" `Quick test_pack_exact_fit;
          Alcotest.test_case "unpack" `Quick test_unpack_restores;
          Alcotest.test_case "episode" `Quick test_pack_episode;
        ] );
      ( "traces",
        [
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "poisson cap" `Quick test_poisson_trace_caps_at_p;
          Alcotest.test_case "poisson increasing" `Quick
            test_poisson_trace_strictly_increasing;
          Alcotest.test_case "uniform" `Quick test_uniform_trace;
          Alcotest.test_case "shifts" `Quick test_shifts;
        ] );
      ( "props",
        qc [ prop_pack_within_budget; prop_pack_conserves_tasks; prop_unpack_roundtrip ] );
    ]
