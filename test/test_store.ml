(* Tests for the persistent memo tier (DESIGN.md S20): snapshot
   round-trips are bit-identical, every corruption mode degrades to a
   structured error (and, through a bank-backed cache, to a fresh
   solve), and the daemon's counter families reset together. *)

open Cyclesteal

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let tmp_dir () =
  let dir = Filename.temp_file "csstore" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ()

let with_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let mat_equal (a : Dp.mat) (b : Dp.mat) =
  let open Bigarray.Array1 in
  dim a = dim b
  &&
  let rec go i = i >= dim a || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0

(* NaN-aware bit equality: unsolved cells are NaN on both sides. *)
let fmat_equal (a : Game.Solver.mat) (b : Game.Solver.mat) =
  let open Bigarray.Array1 in
  dim a = dim b
  &&
  let rec go i =
    i >= dim a
    || (Int64.equal
          (Int64.bits_of_float (unsafe_get a i))
          (Int64.bits_of_float (unsafe_get b i))
        && go (i + 1))
  in
  go 0

let dp_tables_equal a b =
  let sa = Dp.to_snapshot a and sb = Dp.to_snapshot b in
  sa.Dp.s_c = sb.Dp.s_c
  && sa.Dp.s_max_p = sb.Dp.s_max_p
  && sa.Dp.s_max_l = sb.Dp.s_max_l
  && mat_equal sa.Dp.s_value sb.Dp.s_value
  && mat_equal sa.Dp.s_first sb.Dp.s_first

(* --- round-trip properties ------------------------------------------------ *)

let prop_dp_round_trip =
  QCheck.Test.make ~name:"dp snapshot round-trips bit-identically" ~count:12
    QCheck.(triple (int_range 1 9) (int_range 1 4) (int_range 64 900))
    (fun (c, p, l) ->
       with_dir (fun dir ->
           let path = Filename.concat dir "t.snap" in
           let t = Dp.solve ~c ~max_p:p ~max_l:l in
           Store.Snapshot.save_dp ~path t;
           match Store.Snapshot.load_dp ~path ~c with
           | Error e -> QCheck.Test.fail_report (Error.to_string e)
           | Ok loaded ->
             if not (dp_tables_equal t loaded) then
               QCheck.Test.fail_report "loaded table differs";
             (* A mapped table grows on the heap (capacity is pinned at
                the solved bounds) and must agree with a fresh solve at
                the larger bounds cell for cell. *)
             Dp.grow loaded ~max_p:(p + 1) ~max_l:(l + 37);
             let fresh = Dp.solve ~c ~max_p:(p + 1) ~max_l:(l + 37) in
             if not (dp_tables_equal fresh loaded) then
               QCheck.Test.fail_report "grown mapped table differs";
             true))

let prop_game_round_trip =
  QCheck.Test.make ~name:"game memo snapshot round-trips bit-identically"
    ~count:8
    QCheck.(triple (float_range 0.5 2.) (float_range 6_000. 30_000.) (int_range 2 3))
    (fun (c, u, p) ->
       with_dir (fun dir ->
           let path = Filename.concat dir "g.snap" in
           let params = Model.params ~c in
           let opp = Model.opportunity ~lifespan:u ~interrupts:p in
           let grid = u /. 2e5 in
           let policy = Policy.adaptive_guideline in
           let solver = Game.Solver.create ~grid params opp policy in
           let v = Game.Solver.value solver ~p ~residual:u in
           match Game.Solver.to_snapshot solver with
           | None -> QCheck.Test.fail_report "gridded solver had no snapshot"
           | Some snap ->
             Store.Snapshot.save_game ~path ~c ~u ~policy:"adaptive" ~p_key:p
               snap;
             (match
                Store.Snapshot.load_game ~path ~c ~u ~grid ~policy:"adaptive"
                  ~p_key:p
              with
              | Error e -> QCheck.Test.fail_report (Error.to_string e)
              | Ok snap' ->
                if not (fmat_equal snap.Game.Solver.s_mat snap'.Game.Solver.s_mat)
                then QCheck.Test.fail_report "loaded memo differs";
                if snap'.Game.Solver.s_states <> snap.Game.Solver.s_states then
                  QCheck.Test.fail_report "state count differs";
                let solver' =
                  Game.Solver.of_snapshot params opp policy snap'
                in
                Game.reset_counters ();
                let v' = Game.Solver.value solver' ~p ~residual:u in
                if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v'))
                then QCheck.Test.fail_report "loaded value differs";
                if (Game.counters ()).Game.states <> 0 then
                  QCheck.Test.fail_report "loaded solver expanded states";
                true)))

(* --- corruption ----------------------------------------------------------- *)

let write_dp_file dir =
  let path = Filename.concat dir "dp_c5.snap" in
  let t = Dp.solve ~c:5 ~max_p:2 ~max_l:300 in
  Store.Snapshot.save_dp ~path t;
  (path, t)

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
       ignore (Unix.lseek fd off Unix.SEEK_SET);
       let b = Bytes.create 1 in
       ignore (Unix.read fd b 0 1);
       Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
       ignore (Unix.lseek fd off Unix.SEEK_SET);
       ignore (Unix.write fd b 0 1))

let expect_load_error ~what ~sub path =
  match Store.Snapshot.load_dp ~path ~c:5 with
  | Ok _ -> Alcotest.failf "%s: load succeeded" what
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions %S: %s" what sub (Error.to_string e))
      true
      (contains ~sub (Error.to_string e))

let test_corrupt_payload () =
  with_dir (fun dir ->
      let path, _ = write_dp_file dir in
      (* name_len = 0 for dp files, so the payload starts right after
         the 128-byte header. *)
      flip_byte path 200;
      expect_load_error ~what:"flipped payload byte" ~sub:"checksum" path)

let test_corrupt_header () =
  with_dir (fun dir ->
      let path, _ = write_dp_file dir in
      flip_byte path 33;
      expect_load_error ~what:"flipped header byte" ~sub:"header" path)

let test_truncated () =
  with_dir (fun dir ->
      let path, _ = write_dp_file dir in
      let size = (Unix.stat path).Unix.st_size in
      Unix.truncate path (size / 2);
      expect_load_error ~what:"truncated file" ~sub:"truncated" path;
      Unix.truncate path 40;
      expect_load_error ~what:"header-less file" ~sub:"truncated" path)

let test_version_skew () =
  with_dir (fun dir ->
      let path, _ = write_dp_file dir in
      flip_byte path 8;
      expect_load_error ~what:"bumped version" ~sub:"version" path)

let test_bad_magic () =
  with_dir (fun dir ->
      let path, _ = write_dp_file dir in
      flip_byte path 0;
      expect_load_error ~what:"bad magic" ~sub:"magic" path)

let test_param_mismatch () =
  with_dir (fun dir ->
      let path, _ = write_dp_file dir in
      (match Store.Snapshot.load_dp ~path ~c:6 with
       | Ok _ -> Alcotest.fail "c mismatch: load succeeded"
       | Error e ->
         Alcotest.(check bool) "mentions cost" true
           (contains ~sub:"expected c = 6" (Error.to_string e)));
      (* A dp file is not a game memo. *)
      match
        Store.Snapshot.load_game ~path ~c:5. ~u:1e4 ~grid:0.05
          ~policy:"adaptive" ~p_key:(-1)
      with
      | Ok _ -> Alcotest.fail "kind mismatch: load succeeded"
      | Error _ -> ())

let test_game_identity_mismatch () =
  with_dir (fun dir ->
      let path = Filename.concat dir "g.snap" in
      let c = 1. and u = 10_000. and p = 2 in
      let params = Model.params ~c in
      let opp = Model.opportunity ~lifespan:u ~interrupts:p in
      let grid = u /. 2e5 in
      let solver =
        Game.Solver.create ~grid params opp Policy.adaptive_guideline
      in
      ignore (Game.Solver.value solver ~p ~residual:u);
      let snap = Option.get (Game.Solver.to_snapshot solver) in
      Store.Snapshot.save_game ~path ~c ~u ~policy:"adaptive" ~p_key:p snap;
      let expect what r =
        match r with
        | Ok _ -> Alcotest.failf "%s: load succeeded" what
        | Error _ -> ()
      in
      let load ~c ~u ~grid ~policy ~p_key =
        Store.Snapshot.load_game ~path ~c ~u ~grid ~policy ~p_key
      in
      expect "wrong u" (load ~c ~u:(u +. 1.) ~grid ~policy:"adaptive" ~p_key:p);
      expect "wrong c" (load ~c:(c +. 0.5) ~u ~grid ~policy:"adaptive" ~p_key:p);
      expect "wrong grid" (load ~c ~u ~grid:(grid *. 2.) ~policy:"adaptive" ~p_key:p);
      expect "wrong policy" (load ~c ~u ~grid ~policy:"dp" ~p_key:p);
      expect "wrong p" (load ~c ~u ~grid ~policy:"adaptive" ~p_key:(p + 1));
      match load ~c ~u ~grid ~policy:"adaptive" ~p_key:p with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "exact identity refused: %s" (Error.to_string e))

(* --- format versions ------------------------------------------------------- *)

(* A version-1 (dense) snapshot still loads in this build, answers
   identically to the v2 (breakpoint-compressed) write of the same
   table, and grows like any mapped table; the v2 file is strictly
   smaller.  This is the compatibility contract `bank migrate` relies
   on: v1 files are valid until rewritten, never a flag day. *)
let test_v1_v2_skew () =
  with_dir (fun dir ->
      let v1 = Filename.concat dir "v1.snap"
      and v2 = Filename.concat dir "v2.snap" in
      let t = Dp.solve ~c:5 ~max_p:2 ~max_l:300 in
      Store.Snapshot.save_dp_dense ~path:v1 t;
      Store.Snapshot.save_dp ~path:v2 t;
      (match Store.Snapshot.peek_full ~path:v1 with
       | Ok (1, Store.Snapshot.Dp_table { c = 5; _ }) -> ()
       | Ok (v, _) -> Alcotest.failf "v1 file peeked as version %d" v
       | Error e -> Alcotest.fail (Error.to_string e));
      (match Store.Snapshot.peek_full ~path:v2 with
       | Ok (2, Store.Snapshot.Dp_table { c = 5; _ }) -> ()
       | Ok (v, _) -> Alcotest.failf "v2 file peeked as version %d" v
       | Error e -> Alcotest.fail (Error.to_string e));
      Alcotest.(check bool) "v2 strictly smaller" true
        ((Unix.stat v2).Unix.st_size < (Unix.stat v1).Unix.st_size);
      let load path =
        match Store.Snapshot.load_dp ~path ~c:5 with
        | Ok loaded -> loaded
        | Error e -> Alcotest.fail (Error.to_string e)
      in
      let t1 = load v1 and t2 = load v2 in
      Alcotest.(check bool) "v1 load identical" true (dp_tables_equal t t1);
      Alcotest.(check bool) "v2 load identical" true (dp_tables_equal t t2);
      (* Both vintages grow on the heap and agree with a fresh solve. *)
      Dp.grow t1 ~max_p:3 ~max_l:350;
      Dp.grow t2 ~max_p:3 ~max_l:350;
      let fresh = Dp.solve ~c:5 ~max_p:3 ~max_l:350 in
      Alcotest.(check bool) "grown v1 table" true (dp_tables_equal fresh t1);
      Alcotest.(check bool) "grown v2 table" true (dp_tables_equal fresh t2))

(* A v2 file whose breakpoint table is cut short must be rejected as
   truncated (the header still promises the full payload). *)
let test_v2_truncated_pack () =
  with_dir (fun dir ->
      let path, _ = write_dp_file dir in
      let size = (Unix.stat path).Unix.st_size in
      Unix.truncate path (size - 8);
      expect_load_error ~what:"truncated breakpoint table" ~sub:"truncated"
        path)

(* --- bank ----------------------------------------------------------------- *)

let test_bank_open_errors () =
  (match Store.Bank.open_dir ~create:false "/no/such/bank" with
   | Ok _ -> Alcotest.fail "missing dir opened"
   | Error e ->
     Alcotest.(check bool) "mentions the path" true
       (contains ~sub:"/no/such/bank" (Error.to_string e)));
  with_dir (fun dir ->
      let file = Filename.concat dir "plain" in
      let oc = open_out file in
      close_out oc;
      (match Store.Bank.open_dir ~create:false file with
       | Ok _ -> Alcotest.fail "file-as-dir opened"
       | Error _ -> ());
      (match Store.Bank.open_dir ~create:true (file ^ "/sub") with
       | Ok _ -> Alcotest.fail "created a dir under a file"
       | Error _ -> ());
      (* create:true builds parents. *)
      match Store.Bank.open_dir ~create:true (Filename.concat dir "a/b") with
      | Ok b -> Alcotest.(check bool) "dir made" true (Sys.is_directory (Store.Bank.dir b))
      | Error e -> Alcotest.fail (Error.to_string e))

let test_bank_dedup_and_counters () =
  with_dir (fun dir ->
      let bank = Result.get_ok (Store.Bank.open_dir ~create:true dir) in
      let t = Dp.solve ~c:3 ~max_p:2 ~max_l:300 in
      Store.Bank.save_dp bank t;
      Store.Bank.save_dp bank t;
      let c = Store.Bank.counters bank in
      Alcotest.(check int) "second save deduped" 1 c.Store.Bank.saves;
      Alcotest.(check int) "no failures" 0 c.Store.Bank.save_failures;
      (match Store.Bank.load_dp bank ~c:3 with
       | Some loaded ->
         Alcotest.(check bool) "banked table identical" true
           (dp_tables_equal t loaded)
       | None -> Alcotest.fail "banked table missed");
      Alcotest.(check int) "miss counted" 1
        (Store.Bank.load_dp bank ~c:9 |> Option.is_none |> fun _ ->
         (Store.Bank.counters bank).Store.Bank.misses);
      Alcotest.(check int) "hit counted" 1
        (Store.Bank.counters bank).Store.Bank.hits;
      match Store.Bank.entries bank with
      | [ (_, Store.Snapshot.Dp_table { c = 3; _ }) ] -> ()
      | es -> Alcotest.failf "unexpected entries (%d)" (List.length es))

let test_bank_corrupt_falls_through () =
  with_dir (fun dir ->
      let bank = Result.get_ok (Store.Bank.open_dir ~create:true dir) in
      let t = Dp.solve ~c:5 ~max_p:2 ~max_l:300 in
      Store.Bank.save_dp bank t;
      flip_byte (Filename.concat dir "dp_c5.snap") 200;
      (* The bank reports a load failure... *)
      Alcotest.(check bool) "corrupt entry is None" true
        (Option.is_none (Store.Bank.load_dp bank ~c:5));
      let bc = Store.Bank.counters bank in
      Alcotest.(check int) "load failure counted" 1 bc.Store.Bank.load_failures;
      Alcotest.(check bool) "last error kept" true
        (Option.is_some (Store.Bank.last_error bank));
      (* ...and a bank-backed cache answers correctly anyway, by a fresh
         solve. *)
      let cache = Service.Cache.create ~bank ~capacity:4 () in
      let solved = Service.Cache.find_or_solve cache ~c:5 ~p:2 ~l:300 in
      Alcotest.(check int) "fresh solve answers" (Dp.value t ~p:2 ~l:300)
        (Dp.value solved ~p:2 ~l:300);
      let s = Service.Cache.stats cache in
      match s.Service.Cache.bank with
      | None -> Alcotest.fail "bank stats absent"
      | Some b ->
        Alcotest.(check bool) "failures surfaced in stats" true
          (b.Store.Bank.load_failures >= 1))

(* Regression for the tmp-file collision: writers persisting the same
   snapshot name concurrently must each write through their own
   temporary sibling — with a shared tmp path, the second open's
   O_TRUNC shrinks the file under the first writer's live mapping
   (SIGBUS) or interleaves into a CRC-rejected file.  Afterwards
   exactly one complete, valid file must remain, with no tmp litter. *)
let test_concurrent_saves () =
  with_dir (fun dir ->
      let path = Filename.concat dir "t.snap" in
      let tables =
        Array.init 4 (fun i -> Dp.solve ~c:3 ~max_p:2 ~max_l:(300 + (70 * i)))
      in
      for _round = 1 to 5 do
        Array.map
          (fun t -> Domain.spawn (fun () -> Store.Snapshot.save_dp ~path t))
          tables
        |> Array.iter Domain.join
      done;
      (match Store.Snapshot.load_dp ~path ~c:3 with
       | Error e -> Alcotest.fail (Error.to_string e)
       | Ok loaded ->
         Alcotest.(check bool) "a complete written table survives" true
           (Array.exists (fun t -> dp_tables_equal t loaded) tables));
      Alcotest.(check (list string)) "no tmp litter" [ "t.snap" ]
        (Sys.readdir dir |> Array.to_list |> List.sort String.compare))

(* The bank-level race: concurrent save_dp of one identity serializes
   on the in-flight set (racers are dropped, not interleaved) and
   never records a failure. *)
let test_bank_concurrent_saves () =
  with_dir (fun dir ->
      let bank = Result.get_ok (Store.Bank.open_dir ~create:true dir) in
      let t = Dp.solve ~c:3 ~max_p:2 ~max_l:400 in
      Array.init 4 (fun _ -> Domain.spawn (fun () -> Store.Bank.save_dp bank t))
      |> Array.iter Domain.join;
      let c = Store.Bank.counters bank in
      Alcotest.(check bool) "at least one save, none failed" true
        (c.Store.Bank.saves >= 1 && c.Store.Bank.save_failures = 0);
      match Store.Bank.load_dp bank ~c:3 with
      | Some loaded ->
        Alcotest.(check bool) "banked table intact" true
          (dp_tables_equal t loaded)
      | None -> Alcotest.fail "banked table missed")

let test_bank_warm_start () =
  with_dir (fun dir ->
      let bank = Result.get_ok (Store.Bank.open_dir ~create:true dir) in
      (* First process: a cold miss solves and writes behind. *)
      let cache = Service.Cache.create ~bank ~capacity:4 () in
      let t = Service.Cache.find_or_solve cache ~c:7 ~p:2 ~l:400 in
      Alcotest.(check int) "write-behind persisted" 1
        (Store.Bank.counters bank).Store.Bank.saves;
      (* Second process: the bank warms the cache; the same query is a
         hit that fills no cell. *)
      let bank2 = Result.get_ok (Store.Bank.open_dir ~create:false dir) in
      let cache2 = Service.Cache.create ~bank:bank2 ~capacity:4 () in
      Alcotest.(check int) "one table warmed" 1
        (Service.Cache.warm_from_bank cache2);
      Dp.reset_counters ();
      let t2 = Service.Cache.find_or_solve cache2 ~c:7 ~p:2 ~l:400 in
      Alcotest.(check bool) "banked table identical" true (dp_tables_equal t t2);
      Alcotest.(check int) "no cell filled" 0
        (Dp.counters ()).Dp.cells_filled;
      let s = Service.Cache.stats cache2 in
      Alcotest.(check int) "served as a hit" 1 s.Service.Cache.hits;
      Alcotest.(check int) "no miss" 0 s.Service.Cache.misses)

(* A mixed-vintage bank migrates in one pass: v1 files are rewritten
   at the current version, files already current are left alone (and
   counted), corrupt files are counted and left in place — still
   corrupt, still falling through to fresh solves.  A second pass finds
   nothing left to do. *)
let test_bank_migrate () =
  with_dir (fun dir ->
      let t3 = Dp.solve ~c:3 ~max_p:2 ~max_l:300 in
      let t5 = Dp.solve ~c:5 ~max_p:2 ~max_l:240 in
      let t7 = Dp.solve ~c:7 ~max_p:1 ~max_l:200 in
      Store.Snapshot.save_dp_dense
        ~path:(Filename.concat dir "dp_c3.snap")
        t3;
      Store.Snapshot.save_dp ~path:(Filename.concat dir "dp_c5.snap") t5;
      Store.Snapshot.save_dp_dense
        ~path:(Filename.concat dir "dp_c7.snap")
        t7;
      flip_byte (Filename.concat dir "dp_c7.snap") 200;
      (* Non-snapshot files are not the bank's business. *)
      let oc = open_out (Filename.concat dir "README") in
      output_string oc "not a snapshot\n";
      close_out oc;
      let bank = Result.get_ok (Store.Bank.open_dir ~create:false dir) in
      let m = Store.Bank.migrate bank in
      Alcotest.(check int) "migrated" 1 m.Store.Bank.migrated;
      Alcotest.(check int) "already current" 1 m.Store.Bank.already;
      Alcotest.(check int) "skipped" 1 m.Store.Bank.skipped;
      Alcotest.(check bool) "skip surfaced as load failure" true
        ((Store.Bank.counters bank).Store.Bank.load_failures >= 1
        && Option.is_some (Store.Bank.last_error bank));
      (* The migrated file is now current and answers identically... *)
      (match Store.Snapshot.peek_full ~path:(Filename.concat dir "dp_c3.snap") with
       | Ok (v, _) ->
         Alcotest.(check int) "migrated file version" Store.Snapshot.version v
       | Error e -> Alcotest.fail (Error.to_string e));
      (match Store.Snapshot.load_dp ~path:(Filename.concat dir "dp_c3.snap") ~c:3 with
       | Ok loaded ->
         Alcotest.(check bool) "migrated table identical" true
           (dp_tables_equal t3 loaded)
       | Error e -> Alcotest.fail (Error.to_string e));
      (* ...the corrupt file is still there, still corrupt. *)
      (match Store.Snapshot.load_dp ~path:(Filename.concat dir "dp_c7.snap") ~c:7 with
       | Ok _ -> Alcotest.fail "corrupt file loads after migrate"
       | Error _ -> ());
      (* A second pass: everything valid is already current. *)
      let m2 = Store.Bank.migrate bank in
      Alcotest.(check int) "second pass migrates nothing" 0
        m2.Store.Bank.migrated;
      Alcotest.(check int) "second pass already" 2 m2.Store.Bank.already;
      Alcotest.(check int) "second pass skips the corrupt file" 1
        m2.Store.Bank.skipped)

(* --- stats reset ---------------------------------------------------------- *)

let test_reset_counters_all_groups () =
  with_dir (fun dir ->
      let bank = Result.get_ok (Store.Bank.open_dir ~create:true dir) in
      let cache = Service.Cache.create ~bank ~capacity:4 () in
      (* Touch every counter family: dp solve + repeat (hit, miss,
         kernel fill, bank miss + save), corrupt entry (bank load
         failure + last error), and a game evaluation (solver miss,
         game states). *)
      ignore (Service.Cache.find_or_solve cache ~c:4 ~p:2 ~l:300);
      ignore (Service.Cache.find_or_solve cache ~c:4 ~p:2 ~l:300);
      flip_byte (Filename.concat dir "dp_c4.snap") 200;
      ignore (Store.Bank.load_dp bank ~c:4);
      let req =
        Service.Protocol.Evaluate
          { c = 1.; u = 8_000.; p = 2; policy = "adaptive"; periods = None }
      in
      (match Service.Protocol.handle ~cache req with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Error.to_string e));
      let s = Service.Cache.stats cache in
      Alcotest.(check bool) "counters moved" true
        (s.Service.Cache.hits > 0
         && s.Service.Cache.misses > 0
         && s.Service.Cache.kernel.Dp.cells_filled > 0
         && s.Service.Cache.solver_misses > 0
         && s.Service.Cache.game.Game.states > 0
         &&
         match s.Service.Cache.bank with
         | Some b -> b.Store.Bank.saves > 0 && b.Store.Bank.load_failures > 0
         | None -> false);
      Alcotest.(check bool) "last error kept" true
        (Option.is_some s.Service.Cache.bank_last_error);
      (* One reset zeroes every family atomically-together. *)
      Service.Cache.reset_counters cache;
      let s = Service.Cache.stats cache in
      Alcotest.(check bool) "every family zero" true
        (s.Service.Cache.hits = 0
         && s.Service.Cache.misses = 0
         && s.Service.Cache.growths = 0
         && s.Service.Cache.evictions = 0
         && s.Service.Cache.kernel.Dp.cells_filled = 0
         && s.Service.Cache.kernel.Dp.candidates_visited = 0
         && s.Service.Cache.solver_hits = 0
         && s.Service.Cache.solver_misses = 0
         && s.Service.Cache.game.Game.states = 0
         && s.Service.Cache.game.Game.memo_hits = 0
         &&
         match s.Service.Cache.bank with
         | Some b ->
           b.Store.Bank.hits = 0 && b.Store.Bank.misses = 0
           && b.Store.Bank.load_failures = 0
           && b.Store.Bank.saves = 0
           && b.Store.Bank.save_failures = 0
         | None -> false);
      Alcotest.(check bool) "last error cleared" true
        (Option.is_none s.Service.Cache.bank_last_error);
      (* Residency survives a reset: the table still answers as a hit. *)
      ignore (Service.Cache.find_or_solve cache ~c:4 ~p:2 ~l:300);
      Alcotest.(check int) "still resident" 1
        (Service.Cache.stats cache).Service.Cache.hits)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ("round-trip", qc [ prop_dp_round_trip; prop_game_round_trip ]);
      ( "corruption",
        [
          Alcotest.test_case "flipped payload byte" `Quick test_corrupt_payload;
          Alcotest.test_case "flipped header byte" `Quick test_corrupt_header;
          Alcotest.test_case "truncated file" `Quick test_truncated;
          Alcotest.test_case "version skew" `Quick test_version_skew;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "param mismatch" `Quick test_param_mismatch;
          Alcotest.test_case "game identity mismatch" `Quick
            test_game_identity_mismatch;
          Alcotest.test_case "v1/v2 skew" `Quick test_v1_v2_skew;
          Alcotest.test_case "truncated breakpoint table" `Quick
            test_v2_truncated_pack;
        ] );
      ( "bank",
        [
          Alcotest.test_case "open_dir errors" `Quick test_bank_open_errors;
          Alcotest.test_case "dedup + counters" `Quick
            test_bank_dedup_and_counters;
          Alcotest.test_case "corrupt entry falls through" `Quick
            test_bank_corrupt_falls_through;
          Alcotest.test_case "warm start" `Quick test_bank_warm_start;
          Alcotest.test_case "concurrent snapshot saves" `Quick
            test_concurrent_saves;
          Alcotest.test_case "concurrent bank saves" `Quick
            test_bank_concurrent_saves;
          Alcotest.test_case "migrate mixed-vintage bank" `Quick
            test_bank_migrate;
        ] );
      ( "stats reset",
        [
          Alcotest.test_case "all families reset together" `Quick
            test_reset_counters_all_groups;
        ] );
    ]
