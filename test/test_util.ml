(* Tests for the utility substrate: Float_ext, Stats, Table, Rng. *)

open Csutil

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

(* --- Float_ext --------------------------------------------------------- *)

let test_positive_sub () =
  check_float "x > y" 3. (Float_ext.positive_sub 5. 2.);
  check_float "x = y" 0. (Float_ext.positive_sub 2. 2.);
  check_float "x < y clamps" 0. (Float_ext.positive_sub 1. 2.);
  check_float "negative x" 0. (Float_ext.positive_sub (-1.) 2.)

let test_approx_eq () =
  Alcotest.(check bool) "exact" true (Float_ext.approx_eq 1. 1.);
  Alcotest.(check bool) "within rtol" true (Float_ext.approx_eq 1e12 (1e12 +. 1.));
  Alcotest.(check bool) "outside" false (Float_ext.approx_eq 1. 2.);
  Alcotest.(check bool) "near zero atol" true (Float_ext.approx_eq 0. 1e-12)

let test_sum_kahan () =
  (* Many tiny values plus a large one: naive summation loses the tiny
     ones; Kahan keeps them. *)
  let a = Array.make 10_001 1e-8 in
  a.(0) <- 1e8;
  let expected = 1e8 +. 1e-4 in
  check_float ~eps:1e-7 "kahan" expected (Float_ext.sum a)

let test_prefix_sums () =
  let b = Float_ext.prefix_sums [| 1.; 2.; 3. |] in
  Alcotest.(check int) "length" 4 (Array.length b);
  check_float "T0" 0. b.(0);
  check_float "T1" 1. b.(1);
  check_float "T2" 3. b.(2);
  check_float "T3" 6. b.(3)

let test_round_down_to () =
  check_float "multiple" 10. (Float_ext.round_down_to ~grid:5. 10.);
  check_float "rounds down" 10. (Float_ext.round_down_to ~grid:5. 14.9);
  check_float "zero" 0. (Float_ext.round_down_to ~grid:5. 4.9)

let test_clamp () =
  check_float "below" 1. (Float_ext.clamp ~lo:1. ~hi:2. 0.);
  check_float "inside" 1.5 (Float_ext.clamp ~lo:1. ~hi:2. 1.5);
  check_float "above" 2. (Float_ext.clamp ~lo:1. ~hi:2. 3.)

(* --- Stats ------------------------------------------------------------- *)

let test_mean_variance () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean a);
  check_float "variance" (32. /. 7.) (Stats.variance a);
  check_float "stddev" (Float.sqrt (32. /. 7.)) (Stats.stddev a)

let test_variance_singleton () = check_float "singleton" 0. (Stats.variance [| 42. |])

let test_quantile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.median a);
  check_float "q0" 1. (Stats.quantile a 0.);
  check_float "q1" 5. (Stats.quantile a 1.);
  check_float "q25 interpolates" 2. (Stats.quantile a 0.25)

let test_quantile_unsorted_input () =
  let a = [| 5.; 1.; 4.; 2.; 3. |] in
  check_float "median of unsorted" 3. (Stats.median a)

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_accumulator_matches_batch () =
  let samples = Array.init 100 (fun i -> Float.sin (float_of_int i)) in
  let acc = Stats.Accumulator.create () in
  Array.iter (Stats.Accumulator.add acc) samples;
  check_float "count" 100. (float_of_int (Stats.Accumulator.count acc));
  check_float ~eps:1e-9 "mean" (Stats.mean samples) (Stats.Accumulator.mean acc);
  check_float ~eps:1e-9 "variance" (Stats.variance samples)
    (Stats.Accumulator.variance acc);
  let mn, mx = Stats.min_max samples in
  check_float "min" mn (Stats.Accumulator.min acc);
  check_float "max" mx (Stats.Accumulator.max acc)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.Histogram.add h) [ -1.; 0.; 0.5; 5.; 9.99; 10.; 42. ];
  Alcotest.(check int) "total" 7 (Stats.Histogram.total h);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h);
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "bin 0" 2 counts.(0);
  Alcotest.(check int) "bin 5" 1 counts.(5);
  Alcotest.(check int) "bin 9" 1 counts.(9);
  check_float "midpoint" 0.5 (Stats.Histogram.midpoint h 0)

(* --- Table ------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"T" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "10"; "20" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* Rows must appear in insertion order. *)
  let first_row = String.index s '1' in
  let second_row = String.index s '0' in
  Alcotest.(check bool) "order" true (first_row < second_row)

(* Minimal substring containment check (avoids extra dependencies). *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_csv_escaping () =
  let t = Table.create [ "x" ] in
  Table.add_row t [ "plain" ];
  Table.add_row t [ "has,comma" ];
  Table.add_row t [ "has\"quote" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "comma quoted" true (contains ~sub:"\"has,comma\"" csv);
  Alcotest.(check bool) "quote doubled" true (contains ~sub:"\"has\"\"quote\"" csv);
  Alcotest.(check bool) "plain untouched" true (contains ~sub:"\nplain\n" csv)

let test_table_mismatched_row () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

(* --- Rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float01 a) (Rng.float01 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.float01 a = Rng.float01 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.float01 a);
  let b = Rng.copy a in
  check_float "copies aligned" (Rng.float01 a) (Rng.float01 b)

let test_rng_ranges () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.float01 rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.);
    let n = Rng.int rng ~bound:10 in
    Alcotest.(check bool) "int in range" true (n >= 0 && n < 10);
    let e = Rng.exponential rng ~rate:2. in
    Alcotest.(check bool) "exp positive" true (e >= 0.);
    let p = Rng.pareto rng ~xm:1. ~alpha:2. in
    Alcotest.(check bool) "pareto >= xm" true (p >= 1.)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~rate:0.5
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean ~ 2"
    true
    (Float.abs (mean -. 2.) < 0.1)

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually moved" true (a <> Array.init 50 Fun.id)

(* QCheck properties. *)
let prop_positive_sub_nonneg =
  QCheck.Test.make ~name:"positive_sub is non-negative" ~count:500
    QCheck.(pair (float_bound_exclusive 1e6) (float_bound_exclusive 1e6))
    (fun (x, y) -> Float_ext.positive_sub x y >= 0.)

let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantiles stay within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 1e3)) (float_bound_inclusive 1.))
    (fun (l, q) ->
      let a = Array.of_list l in
      let v = Stats.quantile a q in
      let mn, mx = Stats.min_max a in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

(* An independent RFC 4180 reader: quoted cells may contain commas,
   quotes (doubled) and newlines; rows are '\n'-terminated as
   [Table.to_csv] writes them. *)
let parse_csv s =
  let n = String.length s in
  let rows = ref [] and row = ref [] and buf = Buffer.create 16 in
  let flush_cell () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec cell_start i =
    if i >= n then begin
      if Buffer.length buf > 0 || !row <> [] then flush_row ()
    end
    else if s.[i] = '"' then quoted (i + 1)
    else unquoted i
  and unquoted i =
    if i >= n then flush_row ()
    else
      match s.[i] with
      | ',' ->
        flush_cell ();
        cell_start (i + 1)
      | '\n' ->
        flush_row ();
        cell_start (i + 1)
      | ch ->
        Buffer.add_char buf ch;
        unquoted (i + 1)
  and quoted i =
    if i >= n then failwith "parse_csv: unterminated quoted cell"
    else if s.[i] = '"' then
      if i + 1 < n && s.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        quoted (i + 2)
      end
      else unquoted (i + 1)
    else begin
      Buffer.add_char buf s.[i];
      quoted (i + 1)
    end
  in
  cell_start 0;
  List.rev !rows

(* Cells biased toward the characters that trigger RFC 4180 quoting. *)
let csv_cell_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; ' '; ','; '"'; '\n'; '\r' ]) (0 -- 8))

let csv_table_gen =
  let open QCheck.Gen in
  int_range 1 4 >>= fun cols ->
  list_size (return cols) csv_cell_gen >>= fun headers ->
  list_size (0 -- 6) (list_size (return cols) csv_cell_gen) >>= fun rows ->
  return (headers, rows)

let prop_csv_round_trip =
  QCheck.Test.make ~name:"Table.to_csv round-trips through an RFC 4180 reader"
    ~count:300
    (QCheck.make csv_table_gen ~print:(fun (headers, rows) ->
         String.concat " | " (headers :: rows |> List.map (String.concat ";"))))
    (fun (headers, rows) ->
      let t = Table.create headers in
      List.iter (Table.add_row t) rows;
      parse_csv (Table.to_csv t) = headers :: rows)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "float_ext",
        [
          Alcotest.test_case "positive_sub" `Quick test_positive_sub;
          Alcotest.test_case "approx_eq" `Quick test_approx_eq;
          Alcotest.test_case "kahan sum" `Quick test_sum_kahan;
          Alcotest.test_case "prefix sums" `Quick test_prefix_sums;
          Alcotest.test_case "round_down_to" `Quick test_round_down_to;
          Alcotest.test_case "clamp" `Quick test_clamp;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "singleton variance" `Quick test_variance_singleton;
          Alcotest.test_case "quantiles" `Quick test_quantile;
          Alcotest.test_case "quantile unsorted" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "accumulator" `Quick test_accumulator_matches_batch;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv escaping" `Quick test_table_csv_escaping;
          Alcotest.test_case "row arity" `Quick test_table_mismatched_row;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "props",
        qc [ prop_positive_sub_nonneg; prop_quantile_bounds; prop_csv_round_trip ]
      );
    ]
