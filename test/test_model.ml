(* Tests for the model layer (paper Section 2.1). *)

open Cyclesteal

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let test_params_validation () =
  ignore (Model.params ~c:1.);
  Alcotest.check_raises "zero c"
    (Error.Error
       (Error.Invalid_params "Model.params: setup cost c must be finite and positive"))
    (fun () -> ignore (Model.params ~c:0.));
  Alcotest.check_raises "negative c"
    (Error.Error
       (Error.Invalid_params "Model.params: setup cost c must be finite and positive"))
    (fun () -> ignore (Model.params ~c:(-1.)));
  Alcotest.check_raises "nan c"
    (Error.Error
       (Error.Invalid_params "Model.params: setup cost c must be finite and positive"))
    (fun () -> ignore (Model.params ~c:Float.nan))

let test_params_accessor () =
  check_float "c" 2.5 (Model.c (Model.params ~c:2.5))

let test_opportunity_validation () =
  ignore (Model.opportunity ~lifespan:10. ~interrupts:0);
  Alcotest.check_raises "zero lifespan"
    (Error.Error
       (Error.Invalid_params
          "Model.opportunity: lifespan U must be finite and positive"))
    (fun () -> ignore (Model.opportunity ~lifespan:0. ~interrupts:1));
  Alcotest.check_raises "negative interrupts"
    (Error.Error
       (Error.Invalid_params
          "Model.opportunity: interrupt bound p must be non-negative"))
    (fun () -> ignore (Model.opportunity ~lifespan:1. ~interrupts:(-1)))

let test_positive_sub_operator () =
  let open Model in
  check_float "5 -^ 2" 3. (5. -^ 2.);
  check_float "2 -^ 5" 0. (2. -^ 5.);
  check_float "prefix" 3. (Model.positive_sub 5. 2.)

let test_min_useful_lifespan () =
  (* Proposition 4.1(c): the threshold is (p+1) c. *)
  let params = Model.params ~c:3. in
  check_float "p=0" 3. (Model.min_useful_lifespan params ~interrupts:0);
  check_float "p=2" 9. (Model.min_useful_lifespan params ~interrupts:2);
  Alcotest.check_raises "negative p"
    (Error.Error (Error.Invalid_params "Model.min_useful_lifespan: negative p")) (fun () ->
      ignore (Model.min_useful_lifespan params ~interrupts:(-1)))

let test_is_degenerate () =
  let params = Model.params ~c:3. in
  Alcotest.(check bool) "at threshold" true
    (Model.is_degenerate params (Model.opportunity ~lifespan:9. ~interrupts:2));
  Alcotest.(check bool) "above threshold" false
    (Model.is_degenerate params (Model.opportunity ~lifespan:9.1 ~interrupts:2))

(* Proposition 4.1(c) semantics, not just the formula: when the
   opportunity is degenerate, even the exact optimal adaptive player
   guarantees zero work (checked through the integer DP). *)
let test_degenerate_means_zero_work () =
  let c = 3 in
  let dp = Dp.solve ~c ~max_p:3 ~max_l:40 in
  for p = 0 to 3 do
    for l = 0 to c * (p + 1) do
      Alcotest.(check int)
        (Printf.sprintf "W(%d)[%d] = 0" p l)
        0
        (Dp.value dp ~p ~l)
    done;
    (* Comfortably above the threshold, positive work is guaranteed. *)
    let l = (c * (p + 1)) + (2 * (p + 1)) in
    Alcotest.(check bool)
      (Printf.sprintf "W(%d)[%d] > 0" p l)
      true
      (Dp.value dp ~p ~l > 0)
  done

let test_pp_smoke () =
  let params = Model.params ~c:1.5 in
  let opp = Model.opportunity ~lifespan:100. ~interrupts:2 in
  Alcotest.(check bool) "params pp" true
    (String.length (Format.asprintf "%a" Model.pp_params params) > 0);
  Alcotest.(check bool) "opp pp" true
    (String.length (Format.asprintf "%a" Model.pp_opportunity opp) > 0)

let () =
  Alcotest.run "model"
    [
      ( "model",
        [
          Alcotest.test_case "params validation" `Quick test_params_validation;
          Alcotest.test_case "params accessor" `Quick test_params_accessor;
          Alcotest.test_case "opportunity validation" `Quick
            test_opportunity_validation;
          Alcotest.test_case "positive subtraction" `Quick
            test_positive_sub_operator;
          Alcotest.test_case "min useful lifespan" `Quick
            test_min_useful_lifespan;
          Alcotest.test_case "is_degenerate" `Quick test_is_degenerate;
          Alcotest.test_case "Prop 4.1(c) via DP" `Quick
            test_degenerate_means_zero_work;
          Alcotest.test_case "pretty printers" `Quick test_pp_smoke;
        ] );
    ]
