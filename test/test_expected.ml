(* Tests for the expected-output submodel (companion papers [3], [9]). *)

open Cyclesteal

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let params = Model.params ~c:1.

(* --- survival functions ---------------------------------------------- *)

let test_survival_basics () =
  check_float "never" 1. (Expected.survival Expected.Never 1e9);
  check_float "at zero" 1. (Expected.survival (Expected.exponential ~rate:2.) 0.);
  check_float "exponential" (Float.exp (-2.))
    (Expected.survival (Expected.exponential ~rate:2.) 1.);
  check_float "uniform interior" 0.75
    (Expected.survival (Expected.uniform ~horizon:100.) 25.);
  check_float "uniform beyond" 0.
    (Expected.survival (Expected.uniform ~horizon:100.) 100.);
  (* Weibull with shape 1 reduces to exponential. *)
  check_float "weibull shape 1" (Float.exp (-0.5))
    (Expected.survival (Expected.weibull ~scale:2. ~shape:1.) 1.)

let test_survival_monotone () =
  List.iter
    (fun risk ->
       let prev = ref 1.0 in
       for i = 1 to 100 do
         let s = Expected.survival risk (float_of_int i) in
         Alcotest.(check bool) "non-increasing" true (s <= !prev +. 1e-12);
         prev := s
       done)
    [
      Expected.Never;
      Expected.exponential ~rate:0.05;
      Expected.uniform ~horizon:80.;
      Expected.weibull ~scale:30. ~shape:0.7;
      Expected.weibull ~scale:30. ~shape:2.;
    ]

let test_validation () =
  (try
     ignore (Expected.exponential ~rate:0.);
     Alcotest.fail "rate 0 accepted"
   with Error.Error _ -> ());
  (try
     ignore (Expected.uniform ~horizon:(-1.));
     Alcotest.fail "negative horizon accepted"
   with Error.Error _ -> ());
  (try
     ignore (Expected.weibull ~scale:1. ~shape:0.);
     Alcotest.fail "shape 0 accepted"
   with Error.Error _ -> ())

(* --- expected work ----------------------------------------------------- *)

let test_expected_work_never_risk () =
  (* With no risk, expected work equals uninterrupted work. *)
  let s = Schedule.of_list [ 5.; 3.; 2. ] in
  check_float "sum (t - c)"
    (Schedule.work_if_uninterrupted params s)
    (Expected.expected_work params Expected.Never s)

let test_expected_work_hand_computed () =
  (* Uniform horizon 10, S = [4; 4]: periods end at 4, 8 with survival
     0.6, 0.2: E = 0.6*3 + 0.2*3 = 2.4. *)
  let risk = Expected.uniform ~horizon:10. in
  let s = Schedule.of_list [ 4.; 4. ] in
  check_float "hand value" 2.4 (Expected.expected_work params risk s)

let test_expected_work_matches_monte_carlo () =
  let rng = Csutil.Rng.create ~seed:17 in
  List.iter
    (fun risk ->
       let s = Schedule.of_list [ 10.; 8.; 6.; 4.; 2. ] in
       let exact = Expected.expected_work params risk s in
       let mc = Expected.monte_carlo_expected params risk s ~rng ~samples:40_000 in
       Alcotest.(check bool)
         (Format.asprintf "%a: %g vs %g" Expected.pp_risk risk exact mc)
         true
         (Float.abs (exact -. mc) < 0.05 *. Float.max 1. exact))
    [
      Expected.exponential ~rate:0.05;
      Expected.uniform ~horizon:40.;
      Expected.weibull ~scale:20. ~shape:2.;
    ]

(* --- optimal schedules --------------------------------------------------- *)

let test_stationary_period_beats_neighbours () =
  List.iter
    (fun rate ->
       let t_star = Expected.optimal_period_exponential params ~rate in
       Alcotest.(check bool) "exceeds c" true (t_star > 1.);
       let f t =
         let q = Float.exp (-.rate *. t) in
         (t -. 1.) *. q /. (1. -. q)
       in
       Alcotest.(check bool)
         (Printf.sprintf "rate %g: local max at %g" rate t_star)
         true
         (f t_star >= f (t_star *. 0.9) && f t_star >= f (t_star *. 1.1)))
    [ 0.001; 0.01; 0.1; 1. ]

let test_exponential_schedule_shape () =
  let s = Expected.optimal_exponential_schedule params ~rate:0.05 ~horizon:200. in
  (* Stationary: all periods equal except possibly the last. *)
  let m = Schedule.length s in
  Alcotest.(check bool) "several periods" true (m > 2);
  for k = 2 to m - 1 do
    check_float "stationary" (Schedule.period s 1) (Schedule.period s k)
  done;
  check_float ~eps:1e-6 "covers horizon" 200. (Schedule.total s)

(* The boundary DP agrees with the stationary solution under memoryless
   risk (up to grid resolution), and its claimed value matches
   [expected_work] of the schedule it returns. *)
let test_dp_consistency () =
  let risk = Expected.exponential ~rate:0.05 in
  let s_dp, v_dp = Expected.optimal_schedule_dp params risk ~horizon:200. ~steps:400 in
  check_float ~eps:1e-9 "dp value = expected work of dp schedule" v_dp
    (Expected.expected_work params risk s_dp);
  let s_stat = Expected.optimal_exponential_schedule params ~rate:0.05 ~horizon:200. in
  let v_stat = Expected.expected_work params risk s_stat in
  Alcotest.(check bool)
    (Printf.sprintf "dp %g within grid slack of stationary %g" v_dp v_stat)
    true
    (v_dp >= v_stat -. 1.0);
  (* And the DP never claims more than a fine upper bound: a denser grid
     only improves it. *)
  let _, v_dense = Expected.optimal_schedule_dp params risk ~horizon:200. ~steps:800 in
  Alcotest.(check bool) "denser grid at least as good" true (v_dense >= v_dp -. 1e-9)

(* Hazard direction governs period shape: with increasing hazard
   (uniform risk) the optimal periods shrink over time; with decreasing
   hazard (Weibull shape < 1) they grow. *)
let test_hazard_shapes_periods () =
  let shape_of risk =
    let s, _ = Expected.optimal_schedule_dp params risk ~horizon:100. ~steps:400 in
    s
  in
  let incr_hazard = shape_of (Expected.uniform ~horizon:120.) in
  let m = Schedule.length incr_hazard in
  if m >= 3 then
    Alcotest.(check bool) "uniform risk: front-loaded" true
      (Schedule.period incr_hazard 1 >= Schedule.period incr_hazard (m - 1) -. 1e-9);
  let decr_hazard = shape_of (Expected.weibull ~scale:50. ~shape:0.5) in
  let m2 = Schedule.length decr_hazard in
  if m2 >= 3 then
    Alcotest.(check bool) "decreasing hazard: periods grow" true
      (Schedule.period decr_hazard 1 <= Schedule.period decr_hazard (m2 - 1) +. 1e-9)

(* E8's headline: the expected-output optimum has a bad guaranteed
   floor, and the guaranteed-output guideline gives up only a modest
   amount of expected work ("price of paranoia"). *)
let test_expected_vs_guaranteed_tradeoff () =
  let u = 400. in
  let rate = 1. /. 40. in
  let risk = Expected.exponential ~rate in
  (* The grid DP is the expected-output champion (the stationary
     closed form is only optimal up to horizon truncation). *)
  let s_exp, _ = Expected.optimal_schedule_dp params risk ~horizon:u ~steps:800 in
  let s_gua = Nonadaptive.guideline params ~u ~p:2 in
  (* Expected performance. *)
  let e_exp = Expected.expected_work params risk s_exp in
  let e_gua = Expected.expected_work params risk s_gua in
  (* Guaranteed performance (2 adversarial interrupts). *)
  let g_exp, _ = Nonadaptive.worst_case params ~u ~p:2 s_exp in
  let g_gua, _ = Nonadaptive.worst_case params ~u ~p:2 s_gua in
  Alcotest.(check bool) "expected optimum wins its game" true (e_exp >= e_gua -. 1e-9);
  Alcotest.(check bool) "guideline wins its game" true (g_gua >= g_exp -. 1e-9);
  (* The paranoia premium is modest; the adversarial exposure is not. *)
  Alcotest.(check bool)
    (Printf.sprintf "premium small: %g vs %g" e_gua e_exp)
    true
    (e_gua >= 0.8 *. e_exp);
  (* Both optima here are near-equal-period schedules, so the exposure
     gap is strict but modest; the dramatic exposure cases (geometric,
     one-long-period) are covered in test_baselines.ml. *)
  Alcotest.(check bool)
    (Printf.sprintf "exposure strictly worse: %g vs %g" g_exp g_gua)
    true
    (g_exp < g_gua)

(* --- QCheck --------------------------------------------------------------- *)

let arb_schedule =
  QCheck.make ~print:QCheck.Print.(list float)
    QCheck.Gen.(list_size (1 -- 15) (map (fun x -> 0.2 +. (x *. 10.)) (float_bound_exclusive 1.)))

let prop_expected_between_bounds =
  QCheck.Test.make ~name:"0 <= E[W] <= uninterrupted work" ~count:200
    arb_schedule (fun l ->
      let s = Schedule.of_list l in
      let risk = Expected.exponential ~rate:0.07 in
      let e = Expected.expected_work params risk s in
      e >= 0. && e <= Schedule.work_if_uninterrupted params s +. 1e-9)

let prop_dp_dominates_random_schedules =
  QCheck.Test.make ~name:"boundary DP dominates random schedules" ~count:60
    arb_schedule (fun l ->
      (* Scale the random schedule onto the DP's horizon so both cover
         the same span; the DP's value must weakly dominate (its grid
         contains every boundary up to rounding, costing at most one
         step per period). *)
      let horizon = 60. in
      let steps = 240 in
      let risk = Expected.exponential ~rate:0.05 in
      let raw = Schedule.of_list l in
      let scale = horizon /. Schedule.total raw in
      let s = Schedule.of_list (List.map (fun t -> t *. scale) l) in
      let _, v_dp = Expected.optimal_schedule_dp params risk ~horizon ~steps in
      let grid_slack =
        float_of_int (Schedule.length s) *. (horizon /. float_of_int steps)
      in
      v_dp >= Expected.expected_work params risk s -. grid_slack)

let prop_expected_monotone_in_risk =
  QCheck.Test.make ~name:"higher rate, lower expected work" ~count:200
    arb_schedule (fun l ->
      let s = Schedule.of_list l in
      let e1 = Expected.expected_work params (Expected.exponential ~rate:0.02) s in
      let e2 = Expected.expected_work params (Expected.exponential ~rate:0.2) s in
      e2 <= e1 +. 1e-9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "expected"
    [
      ( "risk",
        [
          Alcotest.test_case "survival basics" `Quick test_survival_basics;
          Alcotest.test_case "survival monotone" `Quick test_survival_monotone;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "expected work",
        [
          Alcotest.test_case "never risk" `Quick test_expected_work_never_risk;
          Alcotest.test_case "hand computed" `Quick test_expected_work_hand_computed;
          Alcotest.test_case "matches monte carlo" `Slow
            test_expected_work_matches_monte_carlo;
        ] );
      ( "optima",
        [
          Alcotest.test_case "stationary period" `Quick
            test_stationary_period_beats_neighbours;
          Alcotest.test_case "exponential schedule" `Quick
            test_exponential_schedule_shape;
          Alcotest.test_case "dp consistency" `Quick test_dp_consistency;
          Alcotest.test_case "hazard shapes periods" `Quick
            test_hazard_shapes_periods;
          Alcotest.test_case "expected vs guaranteed trade-off" `Quick
            test_expected_vs_guaranteed_tradeoff;
        ] );
      ("props",
        qc
          [
            prop_expected_between_bounds;
            prop_dp_dominates_random_schedules;
            prop_expected_monotone_in_risk;
          ] );
    ]
