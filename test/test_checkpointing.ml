(* Tests for the cheap-checkpoint extension. *)

open Cyclesteal

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let base = Model.params ~c:10.

let test_params_validation () =
  ignore (Checkpointing.params base ~h:10.);
  ignore (Checkpointing.params base ~h:0.5);
  (try
     ignore (Checkpointing.params base ~h:0.);
     Alcotest.fail "h = 0 accepted"
   with Error.Error _ -> ());
  (try
     ignore (Checkpointing.params base ~h:11.);
     Alcotest.fail "h > c accepted"
   with Error.Error _ -> ())

let test_accessors () =
  let cp = Checkpointing.params base ~h:2. in
  check_float "h" 2. (Checkpointing.h cp);
  check_float "c" 10. (Checkpointing.c cp)

let test_optimal_segment () =
  let cp = Checkpointing.params base ~h:1. in
  (* s* = sqrt(U h / p) - h. *)
  check_float "p=1" (Float.sqrt 10_000. -. 1.)
    (Checkpointing.optimal_segment cp ~u:10_000. ~p:1);
  check_float "p=4 halves the stride" (Float.sqrt 2_500. -. 1.)
    (Checkpointing.optimal_segment cp ~u:10_000. ~p:4);
  (* p=0: no checkpoints, one straight run. *)
  check_float "p=0" 10_000. (Checkpointing.optimal_segment cp ~u:10_000. ~p:0)

let test_closed_form_limits () =
  let u = 10_000. in
  (* p=0 reduces to U - c (one setup, no checkpoints). *)
  let cp = Checkpointing.params base ~h:1. in
  check_float "p=0" (u -. 10.) (Checkpointing.closed_form cp ~u ~p:0);
  (* Cheaper checkpoints, better guarantee. *)
  let w_at h = Checkpointing.closed_form (Checkpointing.params base ~h) ~u ~p:2 in
  Alcotest.(check bool) "monotone in h" true (w_at 1. > w_at 5. && w_at 5. > w_at 10.)

(* The closed form's sqrt-loss scales with h: quartering h roughly
   halves the loss beyond the fixed (p+1)c term. *)
let test_loss_scales_with_sqrt_h () =
  let u = 100_000. in
  let p = 2 in
  let loss h =
    u -. Checkpointing.closed_form (Checkpointing.params base ~h) ~u ~p
    -. (float_of_int (p + 1) *. 10.)   (* remove the fixed setup term *)
  in
  let ratio = loss 8. /. loss 2. in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f ~ 2" ratio)
    true
    (Float.abs (ratio -. 2.) < 0.05)

(* --- Exact DP ----------------------------------------------------------- *)

let test_dp_base_cases () =
  let t = Checkpointing.solve ~c_ticks:5 ~h_ticks:2 ~max_p:2 ~max_l:100 in
  (* p = 0: interior value is the whole residual; fresh value pays c. *)
  Alcotest.(check int) "interior p0" 50 (Checkpointing.interior_value t ~p:0 ~l:50);
  Alcotest.(check int) "fresh p0" 45 (Checkpointing.value t ~p:0 ~l:50);
  Alcotest.(check int) "tiny lifespans are worthless" 0
    (Checkpointing.value t ~p:2 ~l:5)

let test_dp_monotonicity () =
  let t = Checkpointing.solve ~c_ticks:4 ~h_ticks:2 ~max_p:3 ~max_l:120 in
  for p = 0 to 3 do
    for l = 0 to 119 do
      Alcotest.(check bool) "monotone in l" true
        (Checkpointing.value t ~p ~l:(l + 1) >= Checkpointing.value t ~p ~l)
    done
  done;
  for p = 0 to 2 do
    for l = 0 to 120 do
      Alcotest.(check bool) "antitone in p" true
        (Checkpointing.value t ~p:(p + 1) ~l <= Checkpointing.value t ~p ~l)
    done
  done

(* h = c ticks reduces (up to the modelling difference that a
   re-entry setup replaces a checkpoint) to the neighbourhood of the
   base model: the values must agree within (p+1) setups. *)
let test_dp_vs_base_model () =
  let c = 6 in
  let l = 600 in
  let base_dp = Dp.solve ~c ~max_p:2 ~max_l:l in
  let cp = Checkpointing.solve ~c_ticks:c ~h_ticks:c ~max_p:2 ~max_l:l in
  List.iter
    (fun p ->
       let w_base = Dp.value base_dp ~p ~l in
       let w_cp = Checkpointing.value cp ~p ~l in
       Alcotest.(check bool)
         (Printf.sprintf "p=%d: |%d - %d| <= (p+1)c" p w_base w_cp)
         true
         (abs (w_base - w_cp) <= (p + 1) * c))
    [ 0; 1; 2 ]

(* Cheap checkpoints strictly beat the base model on the exact values. *)
let test_dp_cheap_checkpoints_win () =
  let c = 8 in
  let l = 800 in
  let base_dp = Dp.solve ~c ~max_p:2 ~max_l:l in
  let cp = Checkpointing.solve ~c_ticks:c ~h_ticks:1 ~max_p:2 ~max_l:l in
  List.iter
    (fun p ->
       Alcotest.(check bool)
         (Printf.sprintf "p=%d" p)
         true
         (Checkpointing.value cp ~p ~l > Dp.value base_dp ~p ~l))
    [ 1; 2 ]

(* The closed form tracks the exact DP within O(c) on moderate grids. *)
let test_closed_form_vs_dp () =
  let c_ticks = 10 and h_ticks = 2 in
  let t = Checkpointing.solve ~c_ticks ~h_ticks ~max_p:2 ~max_l:3000 in
  let cp = Checkpointing.params (Model.params ~c:(float_of_int c_ticks))
      ~h:(float_of_int h_ticks)
  in
  List.iter
    (fun (l, p) ->
       let u = float_of_int l in
       let exact = float_of_int (Checkpointing.value t ~p ~l) in
       let predicted = Checkpointing.closed_form cp ~u ~p in
       Alcotest.(check bool)
         (Printf.sprintf "l=%d p=%d: |%g - %g| <= 2.5c" l p exact predicted)
         true
         (Float.abs (exact -. predicted) <= 2.5 *. float_of_int c_ticks))
    [ (1000, 1); (3000, 1); (1000, 2); (3000, 2) ];
  (* The non-adaptive equal-segment form is a valid lower bound but
     weaker than adaptive play. *)
  List.iter
    (fun (l, p) ->
       let u = float_of_int l in
       Alcotest.(check bool) "equal-segment below adaptive form" true
         (Checkpointing.equal_segment_closed_form cp ~u ~p
          <= Checkpointing.closed_form cp ~u ~p +. 1e-9))
    [ (1000, 1); (3000, 2) ]

let test_loss_ratio () =
  let cp = Checkpointing.params base ~h:1. in
  let r = Checkpointing.loss_ratio cp ~u:100_000. ~p:2 in
  (* h/c = 0.1: the sqrt term shrinks ~ sqrt(0.1) ~ 0.32, diluted by the
     fixed setups; anything clearly below 1 and above sqrt(h/c)/2 is the
     right ballpark. *)
  Alcotest.(check bool) (Printf.sprintf "ratio %.3f" r) true (r > 0.1 && r < 0.8);
  (try
     ignore (Checkpointing.loss_ratio cp ~u:100. ~p:0);
     Alcotest.fail "p=0 accepted"
   with Error.Error _ -> ())

let () =
  Alcotest.run "checkpointing"
    [
      ( "model",
        [
          Alcotest.test_case "params validation" `Quick test_params_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "optimal segment" `Quick test_optimal_segment;
          Alcotest.test_case "closed-form limits" `Quick test_closed_form_limits;
          Alcotest.test_case "loss ~ sqrt(h)" `Quick test_loss_scales_with_sqrt_h;
        ] );
      ( "dp",
        [
          Alcotest.test_case "base cases" `Quick test_dp_base_cases;
          Alcotest.test_case "monotonicity" `Quick test_dp_monotonicity;
          Alcotest.test_case "h = c ~ base model" `Quick test_dp_vs_base_model;
          Alcotest.test_case "cheap checkpoints win" `Quick
            test_dp_cheap_checkpoints_win;
          Alcotest.test_case "closed form vs DP" `Slow test_closed_form_vs_dp;
          Alcotest.test_case "loss ratio" `Quick test_loss_ratio;
        ] );
    ]
